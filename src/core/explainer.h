#ifndef LANDMARK_CORE_EXPLAINER_H_
#define LANDMARK_CORE_EXPLAINER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/explanation.h"
#include "core/token_space.h"
#include "data/pair_record.h"
#include "em/em_model.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// Which generic explanation system supplies the perturbation distribution
/// and locality kernel (the yellow boxes of the paper's Figure 2). Landmark
/// Explanation is agnostic to this choice — that is the paper's
/// extensibility claim, made concrete.
enum class NeighborhoodKind {
  kLime,  // uniform removal counts + exponential cosine kernel
  kShap,  // KernelSHAP size distribution + Shapley kernel
};

/// \brief Configuration shared by all perturbation-based explainers.
struct ExplainerOptions {
  /// The generic explainer plugged into the framework.
  NeighborhoodKind neighborhood = NeighborhoodKind::kLime;
  /// Number of synthetic neighbourhood samples (perturbations) per
  /// explanation, including the unperturbed one.
  size_t num_samples = 384;
  /// Width of the exponential locality kernel (on cosine distance between
  /// masks; LIME's default 25/100).
  double kernel_width = 0.25;
  /// Ridge strength of the surrogate linear model.
  double ridge_lambda = 1.0;
  /// When > 0, LIME-style "highest weights" feature selection keeps only
  /// this many tokens in the surrogate.
  size_t max_features = 0;
  /// Base seed; the per-record stream also mixes in the record id, so each
  /// record gets an independent but reproducible neighbourhood.
  uint64_t seed = 42;
};

/// \brief Base class of all EM explainers (Figure 2 of the paper).
///
/// A PairExplainer turns one PairRecord plus a black-box EmModel into one or
/// more Explanations. The shared pipeline in ExplainTokenSpace realizes the
/// generic explanation system: Perturbation generation (mask sampling) →
/// Pair reconstruction (virtual Reconstruct) → Dataset reconstruction
/// (model querying) → Surrogate model creation (weighted ridge).
/// Subclasses choose the interpretable token space — that is exactly where
/// Landmark Explanation differs from plain LIME.
class PairExplainer {
 public:
  explicit PairExplainer(ExplainerOptions options = {})
      : options_(options) {}
  virtual ~PairExplainer() = default;

  PairExplainer(const PairExplainer&) = delete;
  PairExplainer& operator=(const PairExplainer&) = delete;

  /// Technique name used in reports ("lime", "landmark-single", ...).
  virtual std::string name() const = 0;

  /// Explains `model`'s prediction on `pair`. Landmark explainers return two
  /// explanations (one per landmark side); LIME returns one.
  virtual Result<std::vector<Explanation>> Explain(
      const EmModel& model, const PairRecord& pair) const = 0;

  /// \brief The Pair-reconstruction component: materializes the PairRecord
  /// corresponding to `explanation` with only the features whose mask bit is
  /// set (empty mask = all active).
  ///
  /// The default rule rebuilds each entity that owns tokens in the
  /// explanation's space from its active tokens and leaves the other entity
  /// exactly as in `original` (that is the landmark-preservation semantics).
  /// The evaluation protocols use this same method, so what is measured is
  /// what the surrogate was trained on.
  virtual Result<PairRecord> Reconstruct(
      const Explanation& explanation, const PairRecord& original,
      const std::vector<uint8_t>& active) const;

  const ExplainerOptions& options() const { return options_; }

 protected:
  /// Deterministic per-record RNG stream.
  Rng MakeRng(const PairRecord& pair) const;

  /// Draws the perturbation masks and their kernel weights according to
  /// options_.neighborhood.
  void SampleNeighborhood(size_t dim, Rng& rng,
                          std::vector<std::vector<uint8_t>>* masks,
                          std::vector<double>* kernel_weights) const;

  /// Runs the shared pipeline over `tokens`. `shell_name` / `landmark_side`
  /// seed the Explanation metadata; reconstruction goes through the virtual
  /// Reconstruct so subclasses with special semantics (Mojito Copy) reuse
  /// the pipeline unchanged.
  Result<Explanation> ExplainTokenSpace(
      const EmModel& model, const PairRecord& original,
      std::vector<Token> tokens, const std::string& shell_name,
      std::optional<EntitySide> landmark_side, Rng& rng) const;

  ExplainerOptions options_;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_EXPLAINER_H_
