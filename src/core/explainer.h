#ifndef LANDMARK_CORE_EXPLAINER_H_
#define LANDMARK_CORE_EXPLAINER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/explanation.h"
#include "core/surrogate.h"
#include "core/token_space.h"
#include "data/pair_record.h"
#include "em/em_model.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// Which generic explanation system supplies the perturbation distribution
/// and locality kernel (the yellow boxes of the paper's Figure 2). Landmark
/// Explanation is agnostic to this choice — that is the paper's
/// extensibility claim, made concrete.
enum class NeighborhoodKind {
  kLime,  // uniform removal counts + exponential cosine kernel
  kShap,  // KernelSHAP size distribution + Shapley kernel
};

/// \brief Configuration shared by all perturbation-based explainers.
struct ExplainerOptions {
  /// The generic explainer plugged into the framework.
  NeighborhoodKind neighborhood = NeighborhoodKind::kLime;
  /// Number of synthetic neighbourhood samples (perturbations) per
  /// explanation, including the unperturbed one. Must be >= 2 (the pipeline
  /// needs the all-active sample plus at least one perturbation).
  size_t num_samples = 384;
  /// Width of the exponential locality kernel (on cosine distance between
  /// masks; LIME's default 25/100). Must be > 0.
  double kernel_width = 0.25;
  /// Ridge strength of the surrogate linear model. Must be >= 0.
  double ridge_lambda = 1.0;
  /// When > 0, LIME-style "highest weights" feature selection keeps only
  /// this many tokens in the surrogate.
  size_t max_features = 0;
  /// Base seed; the per-record stream also mixes in the record id, so each
  /// record gets an independent but reproducible neighbourhood.
  uint64_t seed = 42;
};

/// Checks the invariants documented on ExplainerOptions; the pipeline
/// rejects invalid options with InvalidArgument before doing any work
/// (num_samples < 2 would otherwise make `predictions[0]` — the all-active
/// sample every explanation anchors on — undefined).
Status ValidateExplainerOptions(const ExplainerOptions& options);

/// \brief One unit of explanation work inside the staged pipeline: an
/// interpretable space plus the metadata needed to reconstruct perturbed
/// pairs and map surrogate coefficients back onto token weights.
///
/// A record plans into one unit for plain LIME and two for the landmark and
/// Mojito-Copy techniques (one per side). Each unit carries its own
/// deterministic RNG stream, so units can be processed in any order and on
/// any thread without changing the result.
struct ExplainUnit {
  /// Explanation skeleton: technique name, landmark side, token space with
  /// all weights still zero. The fit stage fills in the weights.
  Explanation shell;
  /// Dimension of the perturbation space. Equals shell.size() for
  /// token-granular explainers; for Mojito Copy it is the number of
  /// copyable attributes.
  size_t dim = 0;
  /// Per-unit RNG stream (derived from options.seed, the record id, and the
  /// unit's side).
  Rng rng{0};
  /// Attribute-granular perturbation (Mojito Copy): perturbation slot i
  /// governs attribute copy_attrs[i], whose value is copied over from
  /// copy_source when the bit is cleared. Empty for token-granular units.
  std::vector<size_t> copy_attrs;
  std::optional<EntitySide> copy_source;
};

/// \brief Base class of all EM explainers (Figure 2 of the paper).
///
/// A PairExplainer turns one PairRecord plus a black-box EmModel into one or
/// more Explanations. The generic pipeline — Perturbation generation (mask
/// sampling) → Pair reconstruction → Dataset reconstruction (model
/// querying) → Surrogate model creation (weighted ridge) — lives exactly
/// once, in ExplainerEngine (core/engine/explainer_engine.h); subclasses
/// only express the *plan*: which interpretable token space to explain
/// (Plan), how a mask maps to a perturbed pair (ReconstructUnit), and how
/// surrogate coefficients map back to token weights (ApplyFit). Choosing the
/// token space is exactly where Landmark Explanation differs from plain
/// LIME.
class PairExplainer {
 public:
  explicit PairExplainer(ExplainerOptions options = {})
      : options_(options) {}
  virtual ~PairExplainer() = default;

  PairExplainer(const PairExplainer&) = delete;
  PairExplainer& operator=(const PairExplainer&) = delete;

  /// Technique name used in reports ("lime", "landmark-single", ...).
  virtual std::string name() const = 0;

  /// Explains `model`'s prediction on `pair`. Landmark explainers return two
  /// explanations (one per landmark side); LIME returns one. The default
  /// implementation drives the shared staged pipeline serially; use
  /// ExplainerEngine::ExplainBatch to amortize model queries over many
  /// records and threads.
  virtual Result<std::vector<Explanation>> Explain(
      const EmModel& model, const PairRecord& pair) const;

  /// \brief Plan stage: builds the explain units for one pair (token-space
  /// construction + RNG stream derivation). Must not query `model` except
  /// for cheap per-record gating (e.g. GenerationStrategy::kAuto picks its
  /// strategy from the model's verdict on the original record).
  virtual Result<std::vector<ExplainUnit>> Plan(const EmModel& model,
                                                const PairRecord& pair) const = 0;

  /// \brief Reconstruct stage: materializes the perturbed PairRecord of one
  /// perturbation mask (size unit.dim) of `unit`. The default forwards to
  /// Reconstruct — token-deletion semantics; Mojito Copy overrides it with
  /// attribute-copy semantics.
  virtual Result<PairRecord> ReconstructUnit(
      const ExplainUnit& unit, const PairRecord& original,
      const std::vector<uint8_t>& mask) const;

  /// Packed-mask form of ReconstructUnit. The default expands the bit row to
  /// bytes and forwards to the byte overload, so explainers that only
  /// override the byte form keep working; hot-path overrides (Mojito Copy)
  /// read the bits directly.
  virtual Result<PairRecord> ReconstructUnit(const ExplainUnit& unit,
                                             const PairRecord& original,
                                             const MaskRow& mask) const;

  /// \brief Fit epilogue: writes the surrogate coefficients, intercept and
  /// weighted R² into unit->shell. The default is the identity mapping
  /// (coefficient i → token i); Mojito Copy distributes each attribute
  /// coefficient uniformly over the attribute's tokens.
  virtual void ApplyFit(const SurrogateFit& fit, ExplainUnit* unit) const;

  /// \brief The Pair-reconstruction component: materializes the PairRecord
  /// corresponding to `explanation` with only the features whose mask bit is
  /// set (empty mask = all active).
  ///
  /// The default rule rebuilds each entity that owns tokens in the
  /// explanation's space from its active tokens and leaves the other entity
  /// exactly as in `original` (that is the landmark-preservation semantics).
  /// The evaluation protocols use this same method, so what is measured is
  /// what the surrogate was trained on.
  virtual Result<PairRecord> Reconstruct(
      const Explanation& explanation, const PairRecord& original,
      const std::vector<uint8_t>& active) const;

  /// \brief The entity side ReconstructUnit never varies across `unit`'s
  /// masks (the frozen landmark), or nullopt when both sides can change.
  ///
  /// The engine's query fast path resolves the frozen side's token profiles
  /// once per unit and shares them across all of the unit's perturbations,
  /// so overrides must stay consistent with ReconstructUnit: reporting a
  /// side that actually varies would score perturbed pairs against stale
  /// values. Returning nullopt is always safe — it only disables the
  /// per-unit sharing, the string-keyed token cache still applies.
  ///
  /// The default derives the answer structurally, so explainers built on
  /// the stock ReconstructUnit need no override: a unit copying attributes
  /// from `copy_source` freezes that side; a token-granular unit whose
  /// tokens all live on one side freezes the other (the default
  /// Reconstruct leaves token-less entities untouched); otherwise nullopt.
  virtual std::optional<EntitySide> FrozenSide(const ExplainUnit& unit) const;

  /// Draws the perturbation masks and their kernel weights according to
  /// options().neighborhood. The first mask is guaranteed all-active (the
  /// `predictions[0]` contract). Public because the engine drives it; only
  /// reads options, so it is safe to call concurrently.
  void SampleNeighborhood(size_t dim, Rng& rng,
                          std::vector<std::vector<uint8_t>>* masks,
                          std::vector<double>* kernel_weights) const;

  /// Packed form: one bit per token, kernel weights computed from popcounts.
  /// Draws the exact RNG sequence of the byte overload, so the two forms
  /// produce the same masks and weights bit for bit.
  void SampleNeighborhood(size_t dim, Rng& rng, MaskMatrix* masks,
                          std::vector<double>* kernel_weights) const;

  const ExplainerOptions& options() const { return options_; }

 protected:
  /// Deterministic per-record RNG stream.
  Rng MakeRng(const PairRecord& pair) const;

  /// Builds a token-granular unit over `tokens` (dim == tokens.size());
  /// errors when the space is empty.
  Result<ExplainUnit> MakeTokenUnit(std::vector<Token> tokens,
                                    const std::string& shell_name,
                                    std::optional<EntitySide> landmark_side,
                                    Rng rng) const;

  ExplainerOptions options_;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_EXPLAINER_H_
