#include "core/lime_explainer.h"

namespace landmark {

Result<std::vector<Explanation>> LimeExplainer::Explain(
    const EmModel& model, const PairRecord& pair) const {
  std::vector<Token> tokens = TokenizeEntity(pair.left, EntitySide::kLeft);
  std::vector<Token> right = TokenizeEntity(pair.right, EntitySide::kRight);
  tokens.insert(tokens.end(), right.begin(), right.end());

  Rng rng = MakeRng(pair);
  LANDMARK_ASSIGN_OR_RETURN(
      Explanation explanation,
      ExplainTokenSpace(model, pair, std::move(tokens), name(),
                        /*landmark_side=*/std::nullopt, rng));
  return std::vector<Explanation>{std::move(explanation)};
}

}  // namespace landmark
