#include "core/lime_explainer.h"

namespace landmark {

Result<std::vector<ExplainUnit>> LimeExplainer::Plan(
    const EmModel& model, const PairRecord& pair) const {
  (void)model;  // plain LIME needs no per-record gating
  std::vector<Token> tokens = TokenizeEntity(pair.left, EntitySide::kLeft);
  std::vector<Token> right = TokenizeEntity(pair.right, EntitySide::kRight);
  tokens.insert(tokens.end(), right.begin(), right.end());

  LANDMARK_ASSIGN_OR_RETURN(
      ExplainUnit unit,
      MakeTokenUnit(std::move(tokens), name(),
                    /*landmark_side=*/std::nullopt, MakeRng(pair)));
  std::vector<ExplainUnit> units;
  units.push_back(std::move(unit));
  return units;
}

}  // namespace landmark
