#include "core/summarizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace landmark {

ExplanationSummary SummarizeExplanations(
    const std::vector<Explanation>& explanations, size_t num_attributes,
    const SummarizerOptions& options) {
  struct Accumulator {
    double weight_sum = 0.0;
    double abs_weight_sum = 0.0;
    size_t support = 0;
  };
  std::map<std::pair<size_t, std::string>, Accumulator> by_token;
  std::vector<double> attribute_mass(num_attributes, 0.0);

  for (const Explanation& exp : explanations) {
    // Within one explanation, merge duplicate (attribute, text) occurrences
    // first so a token repeated in one record counts as one observation.
    std::map<std::pair<size_t, std::string>, double> local;
    for (const TokenWeight& tw : exp.token_weights) {
      if (!options.include_injected && tw.token.injected) continue;
      if (tw.token.attribute >= num_attributes) continue;
      local[{tw.token.attribute, tw.token.text}] += tw.weight;
    }
    for (const auto& [key, weight] : local) {
      Accumulator& acc = by_token[key];
      acc.weight_sum += weight;
      acc.abs_weight_sum += std::abs(weight);
      ++acc.support;
      attribute_mass[key.first] += std::abs(weight);
    }
  }

  ExplanationSummary summary;
  summary.num_explanations = explanations.size();
  for (const auto& [key, acc] : by_token) {
    if (acc.support < options.min_support) continue;
    GlobalTokenImportance entry;
    entry.attribute = key.first;
    entry.text = key.second;
    entry.support = acc.support;
    entry.mean_weight = acc.weight_sum / static_cast<double>(acc.support);
    entry.mean_abs_weight =
        acc.abs_weight_sum / static_cast<double>(acc.support);
    summary.tokens.push_back(std::move(entry));
  }
  std::sort(summary.tokens.begin(), summary.tokens.end(),
            [](const GlobalTokenImportance& a, const GlobalTokenImportance& b) {
              if (a.mean_abs_weight != b.mean_abs_weight) {
                return a.mean_abs_weight > b.mean_abs_weight;
              }
              if (a.support != b.support) return a.support > b.support;
              return a.text < b.text;
            });

  // Normalize attribute importance to sum to 1 for readability.
  double total = 0.0;
  for (double v : attribute_mass) total += v;
  if (total > 0.0) {
    for (double& v : attribute_mass) v /= total;
  }
  summary.attribute_importance = std::move(attribute_mass);
  return summary;
}

std::string ExplanationSummary::ToString(const Schema& schema,
                                         size_t top_k) const {
  std::ostringstream os;
  os << "global summary over " << num_explanations << " explanations\n";
  os << "attribute importance:\n";
  for (size_t a = 0; a < attribute_importance.size(); ++a) {
    os << "  " << schema.attribute_name(a) << ": "
       << FormatDouble(attribute_importance[a], 3) << "\n";
  }
  os << "top tokens (mean |weight|, support):\n";
  for (size_t i = 0; i < std::min(top_k, tokens.size()); ++i) {
    const GlobalTokenImportance& t = tokens[i];
    os << "  " << schema.attribute_name(t.attribute) << ":" << t.text << "  "
       << (t.mean_weight >= 0 ? "+" : "") << FormatDouble(t.mean_weight, 4)
       << " (|w|=" << FormatDouble(t.mean_abs_weight, 4)
       << ", n=" << t.support << ")\n";
  }
  return os.str();
}

}  // namespace landmark
