#include "core/surrogate.h"

#include <algorithm>
#include <numeric>

#include "ml/linalg.h"
#include "util/arena.h"
#include "util/simd.h"

namespace landmark {

namespace {

Matrix MasksToMatrix(const std::vector<std::vector<uint8_t>>& masks,
                     size_t dim) {
  Matrix x(masks.size(), dim);
  for (size_t r = 0; r < masks.size(); ++r) {
    double* row = x.row(r);
    for (size_t c = 0; c < dim; ++c) row[c] = masks[r][c];
  }
  return x;
}

double WeightedR2(const Matrix& x, const std::vector<double>& y,
                  const std::vector<double>& w, const LinearModel& model) {
  double w_total = 0.0, y_mean = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    w_total += w[i];
    y_mean += w[i] * y[i];
  }
  if (w_total <= 0.0) return 0.0;
  y_mean /= w_total;

  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    double pred = model.intercept;
    const double* row = x.row(i);
    for (size_t c = 0; c < model.coefficients.size(); ++c) {
      pred += row[c] * model.coefficients[c];
    }
    ss_res += w[i] * (y[i] - pred) * (y[i] - pred);
    ss_tot += w[i] * (y[i] - y_mean) * (y[i] - y_mean);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

Result<SurrogateFit> FitSurrogate(
    const std::vector<std::vector<uint8_t>>& masks,
    const std::vector<double>& targets,
    const std::vector<double>& sample_weights,
    const SurrogateOptions& options) {
  if (masks.empty()) {
    return Status::InvalidArgument("FitSurrogate: no samples");
  }
  const size_t dim = masks[0].size();
  if (dim == 0) {
    return Status::InvalidArgument("FitSurrogate: empty feature space");
  }
  if (targets.size() != masks.size() ||
      sample_weights.size() != masks.size()) {
    return Status::InvalidArgument("FitSurrogate: shape mismatch");
  }
  for (const auto& mask : masks) {
    if (mask.size() != dim) {
      return Status::InvalidArgument("FitSurrogate: ragged masks");
    }
  }

  Matrix x = MasksToMatrix(masks, dim);
  LANDMARK_ASSIGN_OR_RETURN(
      LinearModel full,
      FitWeightedRidge(x, targets, sample_weights, options.ridge_lambda));

  if (options.max_features == 0 || options.max_features >= dim) {
    SurrogateFit fit;
    fit.weighted_r2 = WeightedR2(x, targets, sample_weights, full);
    fit.model = std::move(full);
    return fit;
  }

  // LIME "highest weights" selection: rank by |coefficient|, refit on the
  // selected columns only.
  std::vector<size_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&full](size_t a, size_t b) {
    const double wa = std::abs(full.coefficients[a]);
    const double wb = std::abs(full.coefficients[b]);
    if (wa != wb) return wa > wb;
    return a < b;
  });
  order.resize(options.max_features);
  std::sort(order.begin(), order.end());

  Matrix x_sel(masks.size(), order.size());
  for (size_t r = 0; r < masks.size(); ++r) {
    for (size_t c = 0; c < order.size(); ++c) {
      x_sel.at(r, c) = masks[r][order[c]];
    }
  }
  LANDMARK_ASSIGN_OR_RETURN(
      LinearModel selected,
      FitWeightedRidge(x_sel, targets, sample_weights, options.ridge_lambda));

  LinearModel expanded;
  expanded.coefficients.assign(dim, 0.0);
  for (size_t c = 0; c < order.size(); ++c) {
    expanded.coefficients[order[c]] = selected.coefficients[c];
  }
  expanded.intercept = selected.intercept;

  SurrogateFit fit;
  fit.weighted_r2 = WeightedR2(x, targets, sample_weights, expanded);
  fit.model = std::move(expanded);
  return fit;
}

Result<SurrogateFit> FitSurrogate(const MaskMatrix& masks,
                                  const std::vector<double>& targets,
                                  const std::vector<double>& sample_weights,
                                  const SurrogateOptions& options) {
  if (masks.rows() == 0) {
    return Status::InvalidArgument("FitSurrogate: no samples");
  }
  const size_t n = masks.rows();
  const size_t dim = masks.dim();
  if (dim == 0) {
    return Status::InvalidArgument("FitSurrogate: empty feature space");
  }
  if (targets.size() != n || sample_weights.size() != n) {
    return Status::InvalidArgument("FitSurrogate: shape mismatch");
  }

  // Build the intercept-augmented design matrix straight from the bit rows.
  // Values are exactly the 0.0/1.0 doubles the byte path produces, so
  // SolveRidge sees a bit-identical system.
  ArenaFrame frame;
  const size_t width = dim + 1;
  double* xa_data = frame.arena().AllocateDoubles(n * width);
  for (size_t r = 0; r < n; ++r) {
    double* dst = xa_data + r * width;
    simd::ExpandBitsToDoubles(masks.row_words(r), dim, dst);
    dst[dim] = 1.0;
  }
  Matrix xa = Matrix::View(xa_data, n, width, width);
  // Feature block of the same storage: stride skips the intercept column.
  Matrix x = Matrix::View(xa_data, n, dim, width);

  LANDMARK_ASSIGN_OR_RETURN(
      Vector beta,
      SolveRidge(xa, targets, sample_weights, options.ridge_lambda, {dim}));
  LinearModel full;
  full.coefficients.assign(beta.begin(), beta.begin() + dim);
  full.intercept = beta[dim];

  if (options.max_features == 0 || options.max_features >= dim) {
    SurrogateFit fit;
    fit.weighted_r2 = WeightedR2(x, targets, sample_weights, full);
    fit.model = std::move(full);
    return fit;
  }

  std::vector<size_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&full](size_t a, size_t b) {
    const double wa = std::abs(full.coefficients[a]);
    const double wb = std::abs(full.coefficients[b]);
    if (wa != wb) return wa > wb;
    return a < b;
  });
  order.resize(options.max_features);
  std::sort(order.begin(), order.end());

  Matrix x_sel(n, order.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < order.size(); ++c) {
      x_sel.at(r, c) = masks.bit(r, order[c]) ? 1.0 : 0.0;
    }
  }
  LANDMARK_ASSIGN_OR_RETURN(
      LinearModel selected,
      FitWeightedRidge(x_sel, targets, sample_weights, options.ridge_lambda));

  LinearModel expanded;
  expanded.coefficients.assign(dim, 0.0);
  for (size_t c = 0; c < order.size(); ++c) {
    expanded.coefficients[order[c]] = selected.coefficients[c];
  }
  expanded.intercept = selected.intercept;

  SurrogateFit fit;
  fit.weighted_r2 = WeightedR2(x, targets, sample_weights, expanded);
  fit.model = std::move(expanded);
  return fit;
}

}  // namespace landmark
