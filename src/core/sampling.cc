#include "core/sampling.h"

#include <cmath>

#include "util/check.h"
#include "util/simd.h"

namespace landmark {
namespace {

std::vector<std::vector<uint8_t>> ExpandRows(const MaskMatrix& packed) {
  std::vector<std::vector<uint8_t>> masks;
  masks.reserve(packed.rows());
  for (size_t r = 0; r < packed.rows(); ++r) {
    masks.push_back(packed.row(r).ToBytes());
  }
  return masks;
}

}  // namespace

size_t MaskRow::ActiveCount() const {
  return static_cast<size_t>(simd::PopcountWords(words, num_words()));
}

std::vector<uint8_t> MaskRow::ToBytes() const {
  std::vector<uint8_t> bytes(dim);
  for (size_t i = 0; i < dim; ++i) bytes[i] = bit(i) ? 1 : 0;
  return bytes;
}

void MaskMatrix::FillRow(size_t r) {
  uint64_t* words = row_words(r);
  for (size_t w = 0; w < words_per_row_; ++w) words[w] = ~uint64_t{0};
  const size_t tail = dim_ & 63;
  if (words_per_row_ > 0 && tail != 0) {
    words[words_per_row_ - 1] = (uint64_t{1} << tail) - 1;
  }
}

MaskMatrix SamplePerturbationMaskMatrix(size_t dim, size_t num_samples,
                                        Rng& rng) {
  LANDMARK_CHECK(dim >= 1);
  MaskMatrix masks(num_samples, dim);
  if (num_samples == 0) return masks;

  masks.FillRow(0);  // the unperturbed representation
  for (size_t s = 1; s < num_samples; ++s) {
    masks.FillRow(s);
    const size_t k = 1 + static_cast<size_t>(rng.NextUint64(dim));
    for (size_t idx : rng.SampleWithoutReplacement(dim, k)) {
      masks.ClearBit(s, idx);
    }
  }
  return masks;
}

MaskMatrix SampleShapMaskMatrix(size_t dim, size_t num_samples, Rng& rng) {
  LANDMARK_CHECK(dim >= 1);
  MaskMatrix masks(num_samples, dim);
  if (num_samples == 0) return masks;

  masks.FillRow(0);  // f(all) anchor; row 1 stays all-zeros: f(none)

  if (dim >= 2) {
    // Size distribution p(k) ∝ (d - 1) / (k (d - k)), k in [1, d-1].
    std::vector<double> size_weights(dim - 1);
    for (size_t k = 1; k < dim; ++k) {
      size_weights[k - 1] =
          1.0 / (static_cast<double>(k) * static_cast<double>(dim - k));
    }
    for (size_t s = 2; s < num_samples; ++s) {
      const size_t k = 1 + rng.NextWeighted(size_weights);
      for (size_t idx : rng.SampleWithoutReplacement(dim, k)) {
        masks.SetBit(s, idx);
      }
    }
  } else {
    // Single feature: only the two anchors exist; repeat them.
    for (size_t s = 2; s < num_samples; ++s) {
      if (s % 2 == 0) masks.FillRow(s);
    }
  }
  return masks;
}

std::vector<std::vector<uint8_t>> SamplePerturbationMasks(size_t dim,
                                                          size_t num_samples,
                                                          Rng& rng) {
  return ExpandRows(SamplePerturbationMaskMatrix(dim, num_samples, rng));
}

std::vector<std::vector<uint8_t>> SampleShapMasks(size_t dim,
                                                  size_t num_samples,
                                                  Rng& rng) {
  return ExpandRows(SampleShapMaskMatrix(dim, num_samples, rng));
}

double ActiveFraction(const std::vector<uint8_t>& mask) {
  if (mask.empty()) return 0.0;
  size_t active = 0;
  for (uint8_t bit : mask) active += bit != 0;
  return static_cast<double>(active) / static_cast<double>(mask.size());
}

double ActiveFraction(const MaskRow& mask) {
  if (mask.dim == 0) return 0.0;
  return static_cast<double>(mask.ActiveCount()) /
         static_cast<double>(mask.dim);
}

namespace {

double KernelWeightFromFraction(double active_fraction, double kernel_width) {
  LANDMARK_CHECK(kernel_width > 0.0);
  const double distance = 1.0 - std::sqrt(active_fraction);
  return std::exp(-(distance * distance) / (kernel_width * kernel_width));
}

}  // namespace

double KernelWeight(const std::vector<uint8_t>& mask, double kernel_width) {
  return KernelWeightFromFraction(ActiveFraction(mask), kernel_width);
}

double KernelWeight(const MaskRow& mask, double kernel_width) {
  return KernelWeightFromFraction(ActiveFraction(mask), kernel_width);
}

double ShapleyKernelWeightFromCount(size_t k, size_t d,
                                    double anchor_weight) {
  LANDMARK_CHECK(d >= 1);
  if (k == 0 || k == d) return anchor_weight;
  // (d - 1) / (C(d, k) k (d - k)); compute C(d, k) in log space to survive
  // large d.
  double log_choose = 0.0;
  for (size_t i = 1; i <= k; ++i) {
    log_choose += std::log(static_cast<double>(d - k + i)) -
                  std::log(static_cast<double>(i));
  }
  const double log_weight =
      std::log(static_cast<double>(d - 1)) - log_choose -
      std::log(static_cast<double>(k)) -
      std::log(static_cast<double>(d - k));
  return std::exp(log_weight);
}

double ShapleyKernelWeight(const std::vector<uint8_t>& mask,
                           double anchor_weight) {
  size_t k = 0;
  for (uint8_t bit : mask) k += bit != 0;
  return ShapleyKernelWeightFromCount(k, mask.size(), anchor_weight);
}

double ShapleyKernelWeight(const MaskRow& mask, double anchor_weight) {
  return ShapleyKernelWeightFromCount(mask.ActiveCount(), mask.dim,
                                      anchor_weight);
}

}  // namespace landmark
