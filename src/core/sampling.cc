#include "core/sampling.h"

#include <cmath>

#include "util/check.h"

namespace landmark {

std::vector<std::vector<uint8_t>> SamplePerturbationMasks(size_t dim,
                                                          size_t num_samples,
                                                          Rng& rng) {
  LANDMARK_CHECK(dim >= 1);
  std::vector<std::vector<uint8_t>> masks;
  masks.reserve(num_samples);
  if (num_samples == 0) return masks;

  masks.emplace_back(dim, 1);  // the unperturbed representation
  for (size_t s = 1; s < num_samples; ++s) {
    std::vector<uint8_t> mask(dim, 1);
    const size_t k = 1 + static_cast<size_t>(rng.NextUint64(dim));
    for (size_t idx : rng.SampleWithoutReplacement(dim, k)) {
      mask[idx] = 0;
    }
    masks.push_back(std::move(mask));
  }
  return masks;
}

double ActiveFraction(const std::vector<uint8_t>& mask) {
  if (mask.empty()) return 0.0;
  size_t active = 0;
  for (uint8_t bit : mask) active += bit != 0;
  return static_cast<double>(active) / static_cast<double>(mask.size());
}

double KernelWeight(const std::vector<uint8_t>& mask, double kernel_width) {
  LANDMARK_CHECK(kernel_width > 0.0);
  const double distance = 1.0 - std::sqrt(ActiveFraction(mask));
  return std::exp(-(distance * distance) / (kernel_width * kernel_width));
}

double ShapleyKernelWeight(const std::vector<uint8_t>& mask,
                           double anchor_weight) {
  const size_t d = mask.size();
  LANDMARK_CHECK(d >= 1);
  size_t k = 0;
  for (uint8_t bit : mask) k += bit != 0;
  if (k == 0 || k == d) return anchor_weight;
  // (d - 1) / (C(d, k) k (d - k)); compute C(d, k) in log space to survive
  // large d.
  double log_choose = 0.0;
  for (size_t i = 1; i <= k; ++i) {
    log_choose += std::log(static_cast<double>(d - k + i)) -
                  std::log(static_cast<double>(i));
  }
  const double log_weight =
      std::log(static_cast<double>(d - 1)) - log_choose -
      std::log(static_cast<double>(k)) -
      std::log(static_cast<double>(d - k));
  return std::exp(log_weight);
}

std::vector<std::vector<uint8_t>> SampleShapMasks(size_t dim,
                                                  size_t num_samples,
                                                  Rng& rng) {
  LANDMARK_CHECK(dim >= 1);
  std::vector<std::vector<uint8_t>> masks;
  masks.reserve(num_samples);
  if (num_samples == 0) return masks;

  masks.emplace_back(dim, 1);  // f(all) anchor
  if (num_samples >= 2) masks.emplace_back(dim, 0);  // f(none) anchor

  if (dim >= 2) {
    // Size distribution p(k) ∝ (d - 1) / (k (d - k)), k in [1, d-1].
    std::vector<double> size_weights(dim - 1);
    for (size_t k = 1; k < dim; ++k) {
      size_weights[k - 1] =
          1.0 / (static_cast<double>(k) * static_cast<double>(dim - k));
    }
    for (size_t s = masks.size(); s < num_samples; ++s) {
      const size_t k = 1 + rng.NextWeighted(size_weights);
      std::vector<uint8_t> mask(dim, 0);
      for (size_t idx : rng.SampleWithoutReplacement(dim, k)) mask[idx] = 1;
      masks.push_back(std::move(mask));
    }
  } else {
    // Single feature: only the two anchors exist; repeat them.
    for (size_t s = masks.size(); s < num_samples; ++s) {
      masks.emplace_back(dim, s % 2 == 0 ? 1 : 0);
    }
  }
  return masks;
}

}  // namespace landmark
