#include "core/token_space.h"

#include "text/tokenize.h"
#include "util/check.h"
#include "util/string_util.h"

namespace landmark {

std::string Token::PrefixedName(const Schema& schema) const {
  std::string out(side == EntitySide::kLeft ? "L:" : "R:");
  if (injected) out += "+";
  out += schema.attribute_name(attribute);
  out += "__";
  out += std::to_string(occurrence);
  out += "__";
  out += text;
  return out;
}

std::vector<Token> TokenizeEntity(const Record& entity, EntitySide side) {
  std::vector<Token> tokens;
  for (size_t a = 0; a < entity.num_attributes(); ++a) {
    const Value& value = entity.value(a);
    if (value.is_null()) continue;
    std::vector<std::string> words = WordTokens(value.text());
    for (size_t i = 0; i < words.size(); ++i) {
      Token t;
      t.attribute = a;
      t.occurrence = i;
      t.text = std::move(words[i]);
      t.side = side;
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

std::vector<Token> BuildAugmentedTokens(const Record& varying,
                                        EntitySide varying_side,
                                        const Record& landmark) {
  LANDMARK_CHECK(varying.num_attributes() == landmark.num_attributes());
  std::vector<Token> out;
  for (size_t a = 0; a < varying.num_attributes(); ++a) {
    size_t occurrence = 0;
    if (!varying.value(a).is_null()) {
      for (auto& word : WordTokens(varying.value(a).text())) {
        Token t;
        t.attribute = a;
        t.occurrence = occurrence++;
        t.text = std::move(word);
        t.side = varying_side;
        out.push_back(std::move(t));
      }
    }
    if (!landmark.value(a).is_null()) {
      for (auto& word : WordTokens(landmark.value(a).text())) {
        Token t;
        t.attribute = a;
        t.occurrence = occurrence++;
        t.text = std::move(word);
        t.side = varying_side;
        t.injected = true;
        out.push_back(std::move(t));
      }
    }
  }
  return out;
}

Record ReconstructEntity(const std::shared_ptr<const Schema>& schema,
                         const std::vector<Token>& tokens,
                         const std::vector<uint8_t>& active, EntitySide side) {
  LANDMARK_CHECK(active.empty() || active.size() == tokens.size());
  std::vector<std::vector<std::string>> per_attr(schema->num_attributes());
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].side != side) continue;
    if (!active.empty() && !active[i]) continue;
    LANDMARK_CHECK(tokens[i].attribute < per_attr.size());
    per_attr[tokens[i].attribute].push_back(tokens[i].text);
  }
  Record entity = Record::Empty(schema);
  for (size_t a = 0; a < per_attr.size(); ++a) {
    if (!per_attr[a].empty()) {
      entity.SetValue(a, Value::Of(Join(per_attr[a], " ")));
    }
  }
  return entity;
}

}  // namespace landmark
