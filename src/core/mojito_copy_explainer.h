#ifndef LANDMARK_CORE_MOJITO_COPY_EXPLAINER_H_
#define LANDMARK_CORE_MOJITO_COPY_EXPLAINER_H_

#include <string>
#include <vector>

#include "core/explainer.h"

namespace landmark {

/// \brief Mojito's COPY perturbation (Di Cicco et al. 2019), the baseline
/// designed for non-matching records.
///
/// As in LIME, the all-ones interpretable vector is the *original* record.
/// Deactivating a feature, however, does not delete anything: it **copies**
/// the other entity's value over the corresponding attribute of the varying
/// entity, pushing the pair towards the match class. Mojito treats
/// attributes atomically — one interpretable feature per attribute — and
/// "distributes its impact equally to its constituent tokens" (paper §2), so
/// every token of an attribute reports the same weight.
///
/// Because copying any single attribute often flips the predicted class on
/// its own, the linear surrogate assigns a large weight to *each* attribute;
/// summed over tokens, these weights wildly overestimate the effect of
/// deleting a few tokens. That mismatch is exactly what the paper's
/// token-based evaluation exposes (Table 2b: accuracy near 0, large MAE).
class MojitoCopyExplainer : public PairExplainer {
 public:
  explicit MojitoCopyExplainer(ExplainerOptions options = {})
      : PairExplainer(options) {}

  std::string name() const override { return "mojito-copy"; }

  /// Plans two units — one per copy direction (source = left, then source =
  /// right) — so Explain returns two explanations. The `landmark` field
  /// records the source (preserved) side; the token space is the *varying*
  /// entity's original tokens, but the perturbation space is
  /// attribute-granular (ExplainUnit::copy_attrs).
  Result<std::vector<ExplainUnit>> Plan(const EmModel& model,
                                        const PairRecord& pair) const override;

  /// Copy semantics of the perturbation phase: clearing bit i copies the
  /// source value over the varying entity's attribute copy_attrs[i].
  ///
  /// Reconstruction for evaluation purposes (the non-virtual-mask
  /// Reconstruct) keeps the inherited token-deletion rule: the explanation
  /// weights live on the varying entity's real tokens, so removing a token
  /// deletes it from the record, as for every other technique.
  Result<PairRecord> ReconstructUnit(
      const ExplainUnit& unit, const PairRecord& original,
      const std::vector<uint8_t>& mask) const override;

  /// Packed form: reads the copy slots straight from the bit row.
  Result<PairRecord> ReconstructUnit(const ExplainUnit& unit,
                                     const PairRecord& original,
                                     const MaskRow& mask) const override;

  /// Distributes each attribute coefficient uniformly over the attribute's
  /// tokens ("distributes its impact equally to its constituent tokens").
  void ApplyFit(const SurrogateFit& fit, ExplainUnit* unit) const override;

  /// Explains one copy direction.
  Result<Explanation> ExplainDirection(const EmModel& model,
                                       const PairRecord& pair,
                                       EntitySide source_side) const;

 private:
  /// Plan for one copy direction.
  Result<ExplainUnit> PlanDirection(const PairRecord& pair,
                                    EntitySide source_side) const;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_MOJITO_COPY_EXPLAINER_H_
