#ifndef LANDMARK_CORE_SAMPLING_H_
#define LANDMARK_CORE_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace landmark {

/// \brief The generic Perturbation-generation component (the yellow box of
/// the paper's Figure 2, provided by LIME): binary deactivation masks over
/// an interpretable feature space plus the locality kernel.
///
/// Masks are stored bit-packed: one bit per interpretable feature, 64-bit
/// words, little-endian within a row (bit `i` of word `i / 64` is feature
/// `i`), padding bits of the last word zeroed. A 384-sample neighborhood
/// over a 40-token unit is ~3 KB instead of ~15 KB of bytes, active counts
/// are popcounts, and mask deduplication compares words instead of byte
/// strings. The byte-vector API below is retained for callers that index
/// masks element-wise; both come from the same sampler so they are always
/// bit-for-bit consistent.

/// Non-owning view of one packed mask row.
struct MaskRow {
  const uint64_t* words = nullptr;
  size_t dim = 0;

  bool bit(size_t i) const {
    return ((words[i >> 6] >> (i & 63)) & 1u) != 0;
  }
  /// Number of set bits (popcount over the row's words).
  size_t ActiveCount() const;
  size_t num_words() const { return (dim + 63) / 64; }
  /// Expands to the legacy byte representation (1 byte per feature).
  std::vector<uint8_t> ToBytes() const;
};

/// \brief Bit-packed mask set: `rows` masks over a `dim`-feature space.
class MaskMatrix {
 public:
  MaskMatrix() = default;
  MaskMatrix(size_t rows, size_t dim)
      : rows_(rows), dim_(dim), words_per_row_((dim + 63) / 64),
        words_(rows * ((dim + 63) / 64), 0) {}

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }
  size_t words_per_row() const { return words_per_row_; }

  uint64_t* row_words(size_t r) { return words_.data() + r * words_per_row_; }
  const uint64_t* row_words(size_t r) const {
    return words_.data() + r * words_per_row_;
  }
  MaskRow row(size_t r) const { return MaskRow{row_words(r), dim_}; }

  bool bit(size_t r, size_t i) const { return row(r).bit(i); }
  void SetBit(size_t r, size_t i) {
    row_words(r)[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void ClearBit(size_t r, size_t i) {
    row_words(r)[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  /// Sets every bit of row `r` (padding bits stay zero).
  void FillRow(size_t r);

  size_t ActiveCount(size_t r) const { return row(r).ActiveCount(); }

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

/// Samples `num_samples` masks of dimension `dim`. The first mask is
/// all-ones (the unperturbed representation, as in LIME); each following
/// mask removes k features, k uniform in {1..dim}, chosen uniformly without
/// replacement. dim must be >= 1.
MaskMatrix SamplePerturbationMaskMatrix(size_t dim, size_t num_samples,
                                        Rng& rng);

/// Samples `num_samples` masks for KernelSHAP: the first two are all-ones
/// and all-zeros (the anchors); the rest draw their active count k from the
/// Shapley size distribution p(k) ∝ (d - 1) / (k (d - k)) and a uniform
/// k-subset. Requires dim >= 1; for dim == 1 only the anchors repeat.
MaskMatrix SampleShapMaskMatrix(size_t dim, size_t num_samples, Rng& rng);

/// Byte-vector equivalents: expansions of the packed samplers above (same
/// RNG stream, identical masks).
std::vector<std::vector<uint8_t>> SamplePerturbationMasks(size_t dim,
                                                          size_t num_samples,
                                                          Rng& rng);
std::vector<std::vector<uint8_t>> SampleShapMasks(size_t dim,
                                                  size_t num_samples,
                                                  Rng& rng);

/// Fraction of active bits of a mask (1.0 for all-ones).
double ActiveFraction(const std::vector<uint8_t>& mask);
double ActiveFraction(const MaskRow& mask);

/// LIME's exponential locality kernel on binary masks:
/// weight = exp(-d² / width²) with d = 1 - sqrt(active_fraction), the
/// cosine distance between the mask and the all-ones vector.
double KernelWeight(const std::vector<uint8_t>& mask, double kernel_width);
double KernelWeight(const MaskRow& mask, double kernel_width);

/// \brief KernelSHAP's Shapley kernel on binary masks:
/// weight = (d - 1) / (C(d, k) * k * (d - k)) for masks with k active
/// features, 0 < k < d. The (infinite-weight) endpoints k = 0 and k = d are
/// returned as `anchor_weight` — callers pin them with a large finite weight
/// so the surrogate respects f(all) and f(none) (the standard KernelSHAP
/// regularization trick).
double ShapleyKernelWeight(const std::vector<uint8_t>& mask,
                           double anchor_weight = 1e6);
double ShapleyKernelWeight(const MaskRow& mask, double anchor_weight = 1e6);

/// Count-based form shared by both mask representations: `k` active out of
/// `d`. Same arithmetic, same result bits.
double ShapleyKernelWeightFromCount(size_t k, size_t d,
                                    double anchor_weight = 1e6);

}  // namespace landmark

#endif  // LANDMARK_CORE_SAMPLING_H_
