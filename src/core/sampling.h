#ifndef LANDMARK_CORE_SAMPLING_H_
#define LANDMARK_CORE_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace landmark {

/// \brief The generic Perturbation-generation component (the yellow box of
/// the paper's Figure 2, provided by LIME): binary deactivation masks over
/// an interpretable feature space plus the locality kernel.

/// Samples `num_samples` masks of dimension `dim`. The first mask is
/// all-ones (the unperturbed representation, as in LIME); each following
/// mask removes k features, k uniform in {1..dim}, chosen uniformly without
/// replacement. dim must be >= 1.
std::vector<std::vector<uint8_t>> SamplePerturbationMasks(size_t dim,
                                                          size_t num_samples,
                                                          Rng& rng);

/// Fraction of active bits of a mask (1.0 for all-ones).
double ActiveFraction(const std::vector<uint8_t>& mask);

/// LIME's exponential locality kernel on binary masks:
/// weight = exp(-d² / width²) with d = 1 - sqrt(active_fraction), the
/// cosine distance between the mask and the all-ones vector.
double KernelWeight(const std::vector<uint8_t>& mask, double kernel_width);

/// \brief KernelSHAP's Shapley kernel on binary masks:
/// weight = (d - 1) / (C(d, k) * k * (d - k)) for masks with k active
/// features, 0 < k < d. The (infinite-weight) endpoints k = 0 and k = d are
/// returned as `anchor_weight` — callers pin them with a large finite weight
/// so the surrogate respects f(all) and f(none) (the standard KernelSHAP
/// regularization trick).
double ShapleyKernelWeight(const std::vector<uint8_t>& mask,
                           double anchor_weight = 1e6);

/// Samples `num_samples` masks for KernelSHAP: the first two are all-ones
/// and all-zeros (the anchors); the rest draw their active count k from the
/// Shapley size distribution p(k) ∝ (d - 1) / (k (d - k)) and a uniform
/// k-subset. Requires dim >= 1; for dim == 1 only the anchors repeat.
std::vector<std::vector<uint8_t>> SampleShapMasks(size_t dim,
                                                  size_t num_samples,
                                                  Rng& rng);

}  // namespace landmark

#endif  // LANDMARK_CORE_SAMPLING_H_
