#ifndef LANDMARK_CORE_ANCHOR_EXPLAINER_H_
#define LANDMARK_CORE_ANCHOR_EXPLAINER_H_

#include <string>
#include <vector>

#include "core/explainer.h"
#include "core/token_space.h"
#include "data/pair_record.h"
#include "em/em_model.h"
#include "util/result.h"

namespace landmark {

/// \brief An if-then rule explaining one prediction: "IF these tokens of the
/// varying entity are present THEN the model predicts <class> with
/// `precision`" (Ribeiro et al. 2018, the Anchors system the paper's related
/// work cites as an alternative explanation family).
struct AnchorRule {
  /// Indices into the token space used during the search.
  std::vector<size_t> anchor_features;
  /// The tokens themselves (copied for self-contained reporting).
  std::vector<Token> anchor_tokens;
  /// Predicted class being anchored (the model's class on the record).
  bool predicts_match = false;
  /// Estimated P(model class unchanged | anchor tokens kept, rest random).
  double precision = 0.0;
  /// Fraction of sampled perturbations to which the rule applies (here:
  /// always 1 — anchors condition on kept tokens — reported for parity).
  double coverage = 1.0;

  std::string ToString(const Schema& schema) const;
};

/// \brief Options for AnchorExplainer.
struct AnchorOptions {
  /// Target precision to stop growing the anchor.
  double target_precision = 0.95;
  /// Perturbation samples drawn per candidate evaluation.
  size_t samples_per_candidate = 64;
  /// Beam width of the greedy search (1 = pure greedy).
  size_t beam_width = 2;
  /// Hard cap on anchor length.
  size_t max_anchor_size = 5;
  double decision_threshold = 0.5;
  uint64_t seed = 42;
};

/// \brief Landmark-style Anchors: beam-searches for a small set of varying-
/// entity tokens whose presence alone keeps the model's prediction stable
/// while every other token of the varying entity is randomly dropped. The
/// landmark entity stays frozen, exactly as in LandmarkExplainer — this
/// shows the landmark idea composing with a *rule-based* generic explainer,
/// not only with linear-surrogate ones.
class AnchorExplainer {
 public:
  explicit AnchorExplainer(AnchorOptions options = {}) : options_(options) {}

  /// Finds an anchor rule for the given landmark side.
  Result<AnchorRule> FindAnchor(const EmModel& model, const PairRecord& pair,
                                EntitySide landmark_side) const;

  /// Anchors from both landmark perspectives.
  Result<std::vector<AnchorRule>> Explain(const EmModel& model,
                                          const PairRecord& pair) const;

  const AnchorOptions& options() const { return options_; }

 private:
  /// Estimated precision of a candidate anchor (subset of token indices).
  double EstimatePrecision(const EmModel& model, const PairRecord& pair,
                           const std::vector<Token>& tokens,
                           EntitySide varying_side,
                           const std::vector<size_t>& anchor, bool target_class,
                           Rng& rng) const;

  AnchorOptions options_;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_ANCHOR_EXPLAINER_H_
