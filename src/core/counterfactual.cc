#include "core/counterfactual.h"

#include <algorithm>

namespace landmark {

Result<Counterfactual> FindCounterfactual(
    const EmModel& model, const PairExplainer& explainer,
    const Explanation& explanation, const PairRecord& original,
    const CounterfactualOptions& options) {
  if (explanation.token_weights.empty()) {
    return Status::InvalidArgument("explanation has no features");
  }

  Counterfactual result;
  result.probability_before = explanation.model_prediction;
  const bool before_match =
      result.probability_before >= options.decision_threshold;

  // Candidates: features supporting the current class, strongest first.
  std::vector<size_t> candidates = before_match
                                       ? explanation.PositiveFeatures()
                                       : explanation.NegativeFeatures();
  std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
    const double wa = explanation.token_weights[a].weight;
    const double wb = explanation.token_weights[b].weight;
    // Descending support for the current class.
    return before_match ? wa > wb : wa < wb;
  });
  if (options.max_removals > 0 && candidates.size() > options.max_removals) {
    candidates.resize(options.max_removals);
  }

  std::vector<uint8_t> active(explanation.size(), 1);
  double p_after = result.probability_before;
  for (size_t idx : candidates) {
    active[idx] = 0;
    result.removed_features.push_back(idx);
    LANDMARK_ASSIGN_OR_RETURN(
        PairRecord rec, explainer.Reconstruct(explanation, original, active));
    p_after = model.PredictProba(rec);
    if ((p_after >= options.decision_threshold) != before_match) {
      result.flipped = true;
      break;
    }
  }
  result.probability_after = p_after;
  if (!result.flipped) return result;

  if (options.prune && result.removed_features.size() > 1) {
    // Backward pass: restore each removed token unless the flip needs it.
    std::vector<size_t> pruned = result.removed_features;
    for (size_t i = 0; i < pruned.size();) {
      active[pruned[i]] = 1;  // tentatively restore
      LANDMARK_ASSIGN_OR_RETURN(
          PairRecord rec,
          explainer.Reconstruct(explanation, original, active));
      const double p = model.PredictProba(rec);
      if ((p >= options.decision_threshold) != before_match) {
        // Still flipped without it: drop from the set for good.
        pruned.erase(pruned.begin() + static_cast<std::ptrdiff_t>(i));
        result.probability_after = p;
      } else {
        active[pruned[i]] = 0;  // needed; re-remove
        ++i;
      }
    }
    result.removed_features = std::move(pruned);
  }
  return result;
}

}  // namespace landmark
