#include "core/explanation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace landmark {

double Explanation::SurrogatePrediction(
    const std::vector<uint8_t>& active) const {
  LANDMARK_CHECK(active.empty() || active.size() == token_weights.size());
  double out = surrogate_intercept;
  for (size_t i = 0; i < token_weights.size(); ++i) {
    if (active.empty() || active[i]) out += token_weights[i].weight;
  }
  return out;
}

std::vector<size_t> Explanation::TopFeatures(size_t k) const {
  std::vector<size_t> order(token_weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    const double wa = std::abs(token_weights[a].weight);
    const double wb = std::abs(token_weights[b].weight);
    if (wa != wb) return wa > wb;
    return a < b;
  });
  if (k < order.size()) order.resize(k);
  return order;
}

std::vector<double> Explanation::AttributeWeights(
    size_t num_attributes) const {
  std::vector<double> weights(num_attributes, 0.0);
  for (const auto& tw : token_weights) {
    LANDMARK_CHECK(tw.token.attribute < num_attributes);
    weights[tw.token.attribute] += std::abs(tw.weight);
  }
  return weights;
}

std::vector<size_t> Explanation::PositiveFeatures() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < token_weights.size(); ++i) {
    if (token_weights[i].weight > 0.0) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Explanation::NegativeFeatures() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < token_weights.size(); ++i) {
    if (token_weights[i].weight < 0.0) out.push_back(i);
  }
  return out;
}

std::string Explanation::ToString(const Schema& schema, size_t top_k) const {
  std::ostringstream os;
  os << explainer_name;
  if (landmark.has_value()) {
    os << " (landmark=" << EntitySideName(*landmark) << ")";
  }
  os << " model_p=" << FormatDouble(model_prediction, 3)
     << " r2=" << FormatDouble(surrogate_r2, 3) << "\n";
  for (size_t idx : TopFeatures(top_k)) {
    const TokenWeight& tw = token_weights[idx];
    os << "  " << (tw.weight >= 0 ? "+" : "") << FormatDouble(tw.weight, 4)
       << "  " << tw.token.PrefixedName(schema) << "\n";
  }
  return os.str();
}

}  // namespace landmark
