#include "core/mojito_copy_explainer.h"

#include "core/sampling.h"
#include "core/surrogate.h"
#include "text/tokenize.h"

namespace landmark {

Result<Explanation> MojitoCopyExplainer::ExplainDirection(
    const EmModel& model, const PairRecord& pair,
    EntitySide source_side) const {
  const EntitySide varying_side = OppositeSide(source_side);
  const Record& source = pair.entity(source_side);
  const Record& varying = pair.entity(varying_side);

  // Interpretable space: the varying entity's own tokens (all-ones = the
  // original record). Only attributes that have tokens AND a non-null source
  // value can take part in the copy perturbation.
  std::vector<Token> tokens = TokenizeEntity(varying, varying_side);
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "varying entity has no tokens to explain (all attribute values null)");
  }

  std::vector<size_t> attrs;            // copyable attributes, in order
  std::vector<int64_t> attr_slot_of(varying.num_attributes(), -1);
  for (const Token& token : tokens) {
    if (attr_slot_of[token.attribute] >= 0) continue;
    if (source.value(token.attribute).is_null()) continue;
    attr_slot_of[token.attribute] = static_cast<int64_t>(attrs.size());
    attrs.push_back(token.attribute);
  }
  if (attrs.empty()) {
    return Status::InvalidArgument(
        "no attribute is copyable (source side entirely null)");
  }

  Explanation explanation;
  explanation.explainer_name = name();
  explanation.landmark = source_side;
  explanation.token_weights.reserve(tokens.size());
  for (auto& token : tokens) {
    explanation.token_weights.push_back(TokenWeight{std::move(token), 0.0});
  }

  // Attribute-level perturbation: bit 0 copies the source value over the
  // varying entity's attribute.
  Rng rng = MakeRng(pair);
  if (source_side == EntitySide::kRight) rng = rng.Fork();
  std::vector<std::vector<uint8_t>> attr_masks;
  std::vector<double> kernel_weights;
  SampleNeighborhood(attrs.size(), rng, &attr_masks, &kernel_weights);

  std::vector<PairRecord> reconstructed;
  reconstructed.reserve(attr_masks.size());
  for (const auto& attr_mask : attr_masks) {
    PairRecord rec = pair;
    Record& rec_varying = rec.entity(varying_side);
    for (size_t slot = 0; slot < attrs.size(); ++slot) {
      if (!attr_mask[slot]) {
        rec_varying.SetValue(attrs[slot], source.value(attrs[slot]));
      }
    }
    reconstructed.push_back(std::move(rec));
  }
  std::vector<double> predictions = model.PredictProbaBatch(reconstructed);

  SurrogateOptions surrogate_options;
  surrogate_options.ridge_lambda = options_.ridge_lambda;
  LANDMARK_ASSIGN_OR_RETURN(
      SurrogateFit fit,
      FitSurrogate(attr_masks, predictions, kernel_weights,
                   surrogate_options));

  // Attribute-atomic weights, distributed uniformly over the attribute's
  // tokens. Tokens of non-copyable attributes keep weight 0.
  std::vector<size_t> tokens_per_attr(varying.num_attributes(), 0);
  for (const auto& tw : explanation.token_weights) {
    ++tokens_per_attr[tw.token.attribute];
  }
  for (auto& tw : explanation.token_weights) {
    const int64_t slot = attr_slot_of[tw.token.attribute];
    if (slot < 0) continue;
    tw.weight = fit.model.coefficients[static_cast<size_t>(slot)] /
                static_cast<double>(tokens_per_attr[tw.token.attribute]);
  }
  explanation.surrogate_intercept = fit.model.intercept;
  explanation.surrogate_r2 = fit.weighted_r2;
  explanation.model_prediction = predictions[0];  // the original record
  return explanation;
}

Result<std::vector<Explanation>> MojitoCopyExplainer::Explain(
    const EmModel& model, const PairRecord& pair) const {
  std::vector<Explanation> out;
  for (EntitySide source_side : {EntitySide::kLeft, EntitySide::kRight}) {
    LANDMARK_ASSIGN_OR_RETURN(Explanation explanation,
                              ExplainDirection(model, pair, source_side));
    out.push_back(std::move(explanation));
  }
  return out;
}

}  // namespace landmark
