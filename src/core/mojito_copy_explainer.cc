#include "core/mojito_copy_explainer.h"

#include <unordered_map>

#include "core/engine/explainer_engine.h"
#include "text/tokenize.h"

namespace landmark {

Result<ExplainUnit> MojitoCopyExplainer::PlanDirection(
    const PairRecord& pair, EntitySide source_side) const {
  const EntitySide varying_side = OppositeSide(source_side);
  const Record& source = pair.entity(source_side);
  const Record& varying = pair.entity(varying_side);

  // Interpretable space: the varying entity's own tokens (all-ones = the
  // original record). Only attributes that have tokens AND a non-null source
  // value can take part in the copy perturbation.
  std::vector<Token> tokens = TokenizeEntity(varying, varying_side);
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "varying entity has no tokens to explain (all attribute values null)");
  }

  std::vector<size_t> attrs;  // copyable attributes, in order
  std::vector<int64_t> attr_slot_of(varying.num_attributes(), -1);
  for (const Token& token : tokens) {
    if (attr_slot_of[token.attribute] >= 0) continue;
    if (source.value(token.attribute).is_null()) continue;
    attr_slot_of[token.attribute] = static_cast<int64_t>(attrs.size());
    attrs.push_back(token.attribute);
  }
  if (attrs.empty()) {
    return Status::InvalidArgument(
        "no attribute is copyable (source side entirely null)");
  }

  ExplainUnit unit;
  unit.shell.explainer_name = name();
  unit.shell.landmark = source_side;
  unit.shell.token_weights.reserve(tokens.size());
  for (auto& token : tokens) {
    unit.shell.token_weights.push_back(TokenWeight{std::move(token), 0.0});
  }
  // Attribute-level perturbation: clearing bit i copies the source value
  // over the varying entity's attribute copy_attrs[i].
  unit.dim = attrs.size();
  unit.copy_attrs = std::move(attrs);
  unit.copy_source = source_side;
  Rng rng = MakeRng(pair);
  if (source_side == EntitySide::kRight) rng = rng.Fork();
  unit.rng = rng;
  return unit;
}

Result<std::vector<ExplainUnit>> MojitoCopyExplainer::Plan(
    const EmModel& model, const PairRecord& pair) const {
  (void)model;
  std::vector<ExplainUnit> units;
  units.reserve(2);
  for (EntitySide source_side : {EntitySide::kLeft, EntitySide::kRight}) {
    LANDMARK_ASSIGN_OR_RETURN(ExplainUnit unit,
                              PlanDirection(pair, source_side));
    units.push_back(std::move(unit));
  }
  return units;
}

Result<PairRecord> MojitoCopyExplainer::ReconstructUnit(
    const ExplainUnit& unit, const PairRecord& original,
    const std::vector<uint8_t>& mask) const {
  if (!unit.copy_source.has_value()) {
    return PairExplainer::ReconstructUnit(unit, original, mask);
  }
  if (mask.size() != unit.copy_attrs.size()) {
    return Status::InvalidArgument(
        "ReconstructUnit: mask size does not match the copy-attribute slots");
  }
  const EntitySide source_side = *unit.copy_source;
  const EntitySide varying_side = OppositeSide(source_side);
  const Record& source = original.entity(source_side);
  PairRecord rec = original;
  Record& rec_varying = rec.entity(varying_side);
  for (size_t slot = 0; slot < unit.copy_attrs.size(); ++slot) {
    if (!mask[slot]) {
      rec_varying.SetValue(unit.copy_attrs[slot],
                           source.value(unit.copy_attrs[slot]));
    }
  }
  return rec;
}

Result<PairRecord> MojitoCopyExplainer::ReconstructUnit(
    const ExplainUnit& unit, const PairRecord& original,
    const MaskRow& mask) const {
  if (!unit.copy_source.has_value()) {
    return PairExplainer::ReconstructUnit(unit, original, mask);
  }
  if (mask.dim != unit.copy_attrs.size()) {
    return Status::InvalidArgument(
        "ReconstructUnit: mask size does not match the copy-attribute slots");
  }
  const EntitySide source_side = *unit.copy_source;
  const EntitySide varying_side = OppositeSide(source_side);
  const Record& source = original.entity(source_side);
  PairRecord rec = original;
  Record& rec_varying = rec.entity(varying_side);
  for (size_t slot = 0; slot < unit.copy_attrs.size(); ++slot) {
    if (!mask.bit(slot)) {
      rec_varying.SetValue(unit.copy_attrs[slot],
                           source.value(unit.copy_attrs[slot]));
    }
  }
  return rec;
}

void MojitoCopyExplainer::ApplyFit(const SurrogateFit& fit,
                                   ExplainUnit* unit) const {
  if (!unit->copy_source.has_value()) {
    PairExplainer::ApplyFit(fit, unit);
    return;
  }
  Explanation& shell = unit->shell;
  // Attribute-atomic weights, distributed uniformly over the attribute's
  // tokens. Tokens of non-copyable attributes keep weight 0.
  std::unordered_map<size_t, size_t> slot_of;
  slot_of.reserve(unit->copy_attrs.size());
  for (size_t slot = 0; slot < unit->copy_attrs.size(); ++slot) {
    slot_of.emplace(unit->copy_attrs[slot], slot);
  }
  std::unordered_map<size_t, size_t> tokens_per_attr;
  for (const auto& tw : shell.token_weights) {
    ++tokens_per_attr[tw.token.attribute];
  }
  for (auto& tw : shell.token_weights) {
    auto it = slot_of.find(tw.token.attribute);
    if (it == slot_of.end()) continue;
    tw.weight = fit.model.coefficients[it->second] /
                static_cast<double>(tokens_per_attr[tw.token.attribute]);
  }
  shell.surrogate_intercept = fit.model.intercept;
  shell.surrogate_r2 = fit.weighted_r2;
}

Result<Explanation> MojitoCopyExplainer::ExplainDirection(
    const EmModel& model, const PairRecord& pair,
    EntitySide source_side) const {
  LANDMARK_ASSIGN_OR_RETURN(ExplainUnit unit,
                            PlanDirection(pair, source_side));
  return ExplainerEngine::Serial().RunUnit(model, pair, *this,
                                           std::move(unit));
}

}  // namespace landmark
