#ifndef LANDMARK_CORE_LANDMARK_EXPLANATION_H_
#define LANDMARK_CORE_LANDMARK_EXPLANATION_H_

/// \file
/// Umbrella header for the Landmark Explanation library's public API.
///
/// Quickstart:
///
///   #include "core/landmark_explanation.h"
///
///   landmark::EmDataset data = ...;                 // pairs + labels
///   auto model = landmark::LogRegEmModel::Train(data).ValueOrDie();
///   landmark::LandmarkExplainer explainer(
///       landmark::GenerationStrategy::kAuto);
///   auto explanations = explainer.Explain(*model, data.pair(0)).ValueOrDie();
///   std::cout << explanations[0].ToString(*data.entity_schema());

#include "core/anchor_explainer.h"
#include "core/counterfactual.h"
#include "core/engine/explainer_engine.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/landmark_explainer.h"
#include "core/lime_explainer.h"
#include "core/mojito_copy_explainer.h"
#include "core/sampling.h"
#include "core/summarizer.h"
#include "core/surrogate.h"
#include "core/token_space.h"
#include "data/dataset_io.h"
#include "data/em_dataset.h"
#include "em/em_model.h"
#include "em/heuristic_model.h"
#include "em/logreg_em_model.h"

#endif  // LANDMARK_CORE_LANDMARK_EXPLANATION_H_
