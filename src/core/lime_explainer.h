#ifndef LANDMARK_CORE_LIME_EXPLAINER_H_
#define LANDMARK_CORE_LIME_EXPLAINER_H_

#include <string>
#include <vector>

#include "core/explainer.h"

namespace landmark {

/// \brief Plain LIME applied to the whole EM record — equivalently, Mojito
/// Drop (the paper's footnote 5: "the Mojito Drop technique implements the
/// LIME approach").
///
/// The interpretable space is the union of the tokens of *both* entities, so
/// a perturbation can drop the same discriminating word from both sides at
/// once — the "null perturbation" problem Landmark Explanation fixes.
class LimeExplainer : public PairExplainer {
 public:
  explicit LimeExplainer(ExplainerOptions options = {})
      : PairExplainer(options) {}

  std::string name() const override { return "lime"; }

  /// Plans exactly one unit covering both entities' tokens, so Explain
  /// returns exactly one explanation.
  Result<std::vector<ExplainUnit>> Plan(const EmModel& model,
                                        const PairRecord& pair) const override;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_LIME_EXPLAINER_H_
