#ifndef LANDMARK_CORE_SUMMARIZER_H_
#define LANDMARK_CORE_SUMMARIZER_H_

#include <string>
#include <vector>

#include "core/explanation.h"
#include "data/schema.h"

namespace landmark {

/// \brief One row of a global explanation summary: a token text (optionally
/// attribute-qualified) with its importance aggregated over many local
/// explanations.
struct GlobalTokenImportance {
  size_t attribute = 0;
  std::string text;
  /// Mean signed weight over the explanations that contain the token.
  double mean_weight = 0.0;
  /// Mean |weight| — the magnitude ranking used by the summary.
  double mean_abs_weight = 0.0;
  /// In how many explanations the token appeared.
  size_t support = 0;
};

/// \brief Global view of an EM model distilled from local explanations —
/// the paper's §5 future work ("techniques for summarizing the explanations
/// to facilitate the interpretation of the EM model as a whole").
///
/// Local token weights are grouped by (attribute, token text) — the
/// occurrence index is deliberately dropped, because globally "sony" in the
/// title is one concept — and aggregated. `attribute_importance` aggregates
/// the same weights per attribute, giving a drop-in global attribute
/// ranking.
struct ExplanationSummary {
  std::vector<GlobalTokenImportance> tokens;  // sorted by mean_abs_weight desc
  std::vector<double> attribute_importance;   // one entry per attribute
  size_t num_explanations = 0;

  /// Pretty-prints the top-k tokens and the attribute ranking.
  std::string ToString(const Schema& schema, size_t top_k = 15) const;
};

/// \brief Aggregation configuration.
struct SummarizerOptions {
  /// Drop tokens that appear in fewer than this many explanations (rare
  /// tokens carry record-specific, not model-level, signal).
  size_t min_support = 2;
  /// When true, injected (landmark-copied) tokens are aggregated too;
  /// otherwise only the record's own tokens contribute.
  bool include_injected = true;
};

/// Builds a global summary from any collection of local explanations.
ExplanationSummary SummarizeExplanations(
    const std::vector<Explanation>& explanations, size_t num_attributes,
    const SummarizerOptions& options = {});

}  // namespace landmark

#endif  // LANDMARK_CORE_SUMMARIZER_H_
