#include "core/landmark_explainer.h"

#include "core/engine/explainer_engine.h"

namespace landmark {

std::string_view GenerationStrategyName(GenerationStrategy strategy) {
  switch (strategy) {
    case GenerationStrategy::kSingle:
      return "single";
    case GenerationStrategy::kDouble:
      return "double";
    case GenerationStrategy::kAuto:
      return "auto";
  }
  return "unknown";
}

std::string LandmarkExplainer::name() const {
  return "landmark-" + std::string(GenerationStrategyName(strategy_));
}

Result<ExplainUnit> LandmarkExplainer::PlanWithLandmark(
    const EmModel& model, const PairRecord& pair,
    EntitySide landmark_side) const {
  const EntitySide varying_side = OppositeSide(landmark_side);
  const Record& landmark_entity = pair.entity(landmark_side);
  const Record& varying_entity = pair.entity(varying_side);

  GenerationStrategy effective = strategy_;
  if (effective == GenerationStrategy::kAuto) {
    // §3: double-entity generation when the record is predicted
    // non-matching, single-entity otherwise.
    effective = model.PredictProba(pair) >= 0.5 ? GenerationStrategy::kSingle
                                                : GenerationStrategy::kDouble;
  }

  std::vector<Token> tokens =
      effective == GenerationStrategy::kSingle
          ? TokenizeEntity(varying_entity, varying_side)
          : BuildAugmentedTokens(varying_entity, varying_side,
                                 landmark_entity);

  Rng rng = MakeRng(pair);
  // Derive distinct streams for the two landmark sides.
  if (landmark_side == EntitySide::kRight) rng = rng.Fork();
  return MakeTokenUnit(std::move(tokens), name(), landmark_side, rng);
}

Result<Explanation> LandmarkExplainer::ExplainWithLandmark(
    const EmModel& model, const PairRecord& pair,
    EntitySide landmark_side) const {
  LANDMARK_ASSIGN_OR_RETURN(ExplainUnit unit,
                            PlanWithLandmark(model, pair, landmark_side));
  return ExplainerEngine::Serial().RunUnit(model, pair, *this,
                                           std::move(unit));
}

Result<std::vector<ExplainUnit>> LandmarkExplainer::Plan(
    const EmModel& model, const PairRecord& pair) const {
  std::vector<ExplainUnit> units;
  units.reserve(2);
  for (EntitySide landmark_side : {EntitySide::kLeft, EntitySide::kRight}) {
    LANDMARK_ASSIGN_OR_RETURN(ExplainUnit unit,
                              PlanWithLandmark(model, pair, landmark_side));
    units.push_back(std::move(unit));
  }
  return units;
}

}  // namespace landmark
