#ifndef LANDMARK_CORE_COUNTERFACTUAL_H_
#define LANDMARK_CORE_COUNTERFACTUAL_H_

#include <vector>

#include "core/explainer.h"
#include "core/explanation.h"
#include "em/em_model.h"
#include "util/result.h"

namespace landmark {

/// \brief A minimal token-removal counterfactual: the smallest set of
/// interpretable features (found greedily) whose removal flips the model's
/// predicted class.
struct Counterfactual {
  /// Indices into the explanation's token space, in removal order.
  std::vector<size_t> removed_features;
  /// Model probability before any removal (on the all-active
  /// representation) and after removing `removed_features`.
  double probability_before = 0.0;
  double probability_after = 0.0;
  /// True when the predicted class actually flipped; false when even
  /// removing every candidate token could not flip it (the returned set is
  /// then the full candidate list).
  bool flipped = false;
};

/// \brief Options for FindCounterfactual.
struct CounterfactualOptions {
  double decision_threshold = 0.5;
  /// Stop after removing this many tokens (0 = no limit).
  size_t max_removals = 0;
  /// When true, after the greedy phase each removed token is tentatively
  /// restored to prune removals the flip does not actually need (makes the
  /// set minimal, not just sufficient).
  bool prune = true;
};

/// \brief Greedy counterfactual search over an explanation's token space.
///
/// Extends the paper's interest evaluation (§4.3) from "remove *all*
/// decision tokens" to "remove the *fewest* tokens that change the label":
/// tokens are removed in descending order of the weight that supports the
/// current class, re-querying the model after each removal; an optional
/// pruning pass then restores tokens that were not needed.
///
/// The candidate set is the explanation's features whose weight supports the
/// current predicted class (positive weights for a predicted match, negative
/// for a predicted non-match), so the search is guided by — and therefore
/// also a fidelity probe of — the explanation.
Result<Counterfactual> FindCounterfactual(const EmModel& model,
                                          const PairExplainer& explainer,
                                          const Explanation& explanation,
                                          const PairRecord& original,
                                          const CounterfactualOptions& options = {});

}  // namespace landmark

#endif  // LANDMARK_CORE_COUNTERFACTUAL_H_
