#ifndef LANDMARK_CORE_SURROGATE_H_
#define LANDMARK_CORE_SURROGATE_H_

#include <cstdint>
#include <vector>

#include "core/sampling.h"
#include "ml/linear_regression.h"
#include "util/result.h"

namespace landmark {

/// \brief The generic Surrogate-model-creation component: a weighted linear
/// model fit on (mask, model-probability) pairs.
struct SurrogateFit {
  LinearModel model;
  /// Weighted R² of the surrogate on its own training neighbourhood. Low
  /// values indicate the linear approximation is poor around this record.
  double weighted_r2 = 0.0;
};

/// \brief Options for FitSurrogate.
struct SurrogateOptions {
  /// Ridge regularization strength.
  double ridge_lambda = 1.0;
  /// When > 0, keep only this many features: an initial ridge fit ranks
  /// features by |weight|, then the model is refit on the winners (LIME's
  /// "highest weights" feature-selection). Dropped features get weight 0.
  size_t max_features = 0;
};

/// Fits the surrogate: masks are the binary design matrix, `targets` the EM
/// model probabilities, `sample_weights` the kernel weights.
Result<SurrogateFit> FitSurrogate(const std::vector<std::vector<uint8_t>>& masks,
                                  const std::vector<double>& targets,
                                  const std::vector<double>& sample_weights,
                                  const SurrogateOptions& options = {});

/// Packed-mask form: the augmented design matrix is assembled directly from
/// the bit rows into arena memory (no per-mask byte expansion, no Matrix
/// copy for the intercept column). Bit-identical to the byte overload.
Result<SurrogateFit> FitSurrogate(const MaskMatrix& masks,
                                  const std::vector<double>& targets,
                                  const std::vector<double>& sample_weights,
                                  const SurrogateOptions& options = {});

}  // namespace landmark

#endif  // LANDMARK_CORE_SURROGATE_H_
