#ifndef LANDMARK_CORE_EXPLANATION_H_
#define LANDMARK_CORE_EXPLANATION_H_

#include <optional>
#include <string>
#include <vector>

#include "core/token_space.h"
#include "data/schema.h"

namespace landmark {

/// \brief One interpretable feature with its learned importance.
struct TokenWeight {
  Token token;
  double weight = 0.0;
};

/// \brief A local explanation of one EM model prediction: the coefficients
/// of the surrogate linear model over the interpretable token space.
///
/// Positive weights are tokens that push the pair towards the *matching*
/// class, negative weights towards non-matching ("which tokens should be
/// added and which should be removed to create a description that is close
/// to the reference entity", §3).
struct Explanation {
  /// Name of the technique that produced it ("landmark-single", "lime", ...).
  std::string explainer_name;

  /// The side kept fixed during perturbation; nullopt for explainers that
  /// perturb both entities at once (plain LIME / Mojito Drop).
  std::optional<EntitySide> landmark;

  /// EM model probability on the all-features-active representation (for
  /// plain LIME that is the original record; for double-entity generation it
  /// is the augmented record).
  double model_prediction = 0.0;

  /// Surrogate intercept and weighted R² on the synthetic neighbourhood
  /// (fidelity diagnostic).
  double surrogate_intercept = 0.0;
  double surrogate_r2 = 0.0;

  /// One weight per interpretable feature, aligned with the explainer's
  /// token space order.
  std::vector<TokenWeight> token_weights;

  size_t size() const { return token_weights.size(); }

  /// Surrogate prediction for an active-feature mask (empty = all active):
  /// intercept + sum of active weights.
  double SurrogatePrediction(const std::vector<uint8_t>& active = {}) const;

  /// Indices of the `k` features with the largest |weight| (all when k >=
  /// size), most important first.
  std::vector<size_t> TopFeatures(size_t k) const;

  /// Sum of |weight| grouped by token attribute — the surrogate-side
  /// attribute importance of the paper's attribute-based evaluation.
  std::vector<double> AttributeWeights(size_t num_attributes) const;

  /// Indices of features with weight > 0 (match evidence) / < 0.
  std::vector<size_t> PositiveFeatures() const;
  std::vector<size_t> NegativeFeatures() const;

  /// Pretty-prints the top-k tokens with weights.
  std::string ToString(const Schema& schema, size_t top_k = 10) const;
};

}  // namespace landmark

#endif  // LANDMARK_CORE_EXPLANATION_H_
