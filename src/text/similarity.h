#ifndef LANDMARK_TEXT_SIMILARITY_H_
#define LANDMARK_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace landmark {

/// String- and set-based similarity measures used by the Magellan-style EM
/// feature extractor. All similarities are in [0, 1]; 1 means identical.

/// Unit-cost edit distance (insert / delete / substitute).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - dist / max(|a|, |b|); 1.0 when both strings are empty.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity (matching window + transpositions).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with the standard prefix scaling factor p = 0.1, prefix
/// length capped at 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// |A ∩ B| / |A ∪ B| over the distinct elements of the token lists.
/// 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|) over distinct elements; 1.0 when both sides are
/// empty, 0.0 when exactly one side is empty.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|) over distinct elements; 1.0 when both empty.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// Cosine over token multisets (term-frequency vectors); 1.0 when both
/// empty, 0 when exactly one side is empty.
double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; callers usually average both directions.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// Symmetrized Monge-Elkan: (ME(a,b) + ME(b,a)) / 2.
double MongeElkanSymmetric(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

/// Jaccard over character 3-grams of the whole strings.
double TrigramSimilarity(std::string_view a, std::string_view b);

/// Relative numeric closeness: 1 - |a-b| / max(|a|, |b|); 1.0 when a == b
/// (including both zero). Clamped to [0, 1].
double NumericSimilarity(double a, double b);

/// 1.0 when the strings are byte-identical, else 0.0.
double ExactMatch(std::string_view a, std::string_view b);

}  // namespace landmark

#endif  // LANDMARK_TEXT_SIMILARITY_H_
