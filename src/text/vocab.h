#ifndef LANDMARK_TEXT_VOCAB_H_
#define LANDMARK_TEXT_VOCAB_H_

#include <map>
#include <string>
#include <vector>

namespace landmark {

/// \brief Bidirectional token <-> dense-id mapping.
class Vocabulary {
 public:
  /// Returns the id of `token`, inserting it when unseen.
  size_t GetOrAdd(const std::string& token);

  /// Returns the id of `token`, or -1 when unseen.
  int64_t Lookup(const std::string& token) const;

  const std::string& TokenOf(size_t id) const { return tokens_.at(id); }
  size_t size() const { return tokens_.size(); }

 private:
  std::map<std::string, size_t> ids_;
  std::vector<std::string> tokens_;
};

}  // namespace landmark

#endif  // LANDMARK_TEXT_VOCAB_H_
