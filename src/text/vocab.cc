#include "text/vocab.h"

namespace landmark {

size_t Vocabulary::GetOrAdd(const std::string& token) {
  auto [it, inserted] = ids_.emplace(token, tokens_.size());
  if (inserted) tokens_.push_back(token);
  return it->second;
}

int64_t Vocabulary::Lookup(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? -1 : static_cast<int64_t>(it->second);
}

}  // namespace landmark
