#ifndef LANDMARK_TEXT_TOKENIZE_H_
#define LANDMARK_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace landmark {

/// \brief Splits `text` into word tokens the way the paper's Tokenizer does:
/// one token per space-separated term (§3.1). No case folding or punctuation
/// stripping happens here — benchmark values are already lowercase and the
/// explainers must preserve the exact surface form so that pair
/// reconstruction can re-join tokens losslessly.
std::vector<std::string> WordTokens(std::string_view text);

/// \brief Normalized tokens for *similarity computation*: lowercased and
/// stripped of leading/trailing ASCII punctuation. Used by the EM feature
/// extractor, not by the explainers.
std::vector<std::string> NormalizedTokens(std::string_view text);

/// \brief Character q-grams of `s` (q >= 1). Shorter strings yield the whole
/// string as a single gram.
std::vector<std::string> QGrams(std::string_view s, size_t q);

}  // namespace landmark

#endif  // LANDMARK_TEXT_TOKENIZE_H_
