#include "text/tfidf.h"

#include <cmath>
#include <set>

namespace landmark {

void TfIdfVectorizer::Fit(
    const std::vector<std::vector<std::string>>& corpus) {
  num_docs_ = corpus.size();
  for (const auto& doc : corpus) {
    std::set<std::string> distinct(doc.begin(), doc.end());
    for (const auto& token : distinct) {
      size_t id = vocab_.GetOrAdd(token);
      if (id >= doc_freq_.size()) doc_freq_.resize(id + 1, 0);
      ++doc_freq_[id];
    }
  }
}

double TfIdfVectorizer::Idf(size_t token_id) const {
  const double df =
      token_id < doc_freq_.size() ? static_cast<double>(doc_freq_[token_id]) : 0.0;
  return std::log((1.0 + static_cast<double>(num_docs_)) / (1.0 + df)) + 1.0;
}

TfIdfVectorizer::SparseVector TfIdfVectorizer::Transform(
    const std::vector<std::string>& doc) const {
  std::map<size_t, double> tf;
  for (const auto& token : doc) {
    int64_t id = vocab_.Lookup(token);
    if (id >= 0) tf[static_cast<size_t>(id)] += 1.0;
  }
  SparseVector vec;
  vec.reserve(tf.size());
  double norm_sq = 0.0;
  for (const auto& [id, f] : tf) {
    const double w = f * Idf(id);
    vec.emplace_back(id, w);
    norm_sq += w * w;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [id, w] : vec) w *= inv;
  }
  return vec;
}

double TfIdfVectorizer::Cosine(const SparseVector& a, const SparseVector& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      ++i;
    } else if (a[i].first > b[j].first) {
      ++j;
    } else {
      dot += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return dot;
}

}  // namespace landmark
