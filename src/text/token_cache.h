#ifndef LANDMARK_TEXT_TOKEN_CACHE_H_
#define LANDMARK_TEXT_TOKEN_CACHE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace landmark {

/// \brief All token-level derivations of one attribute string, computed once
/// and reused by every similarity kind that consumes them.
///
/// `ComputeAttributeFeature`'s token-set kinds each re-tokenized both sides
/// from scratch (up to 8 tokenizations per attribute pair per call) and
/// rebuilt their `std::set` / frequency-map scaffolding per kind. A
/// TokenizedValue precomputes the shared views — the normalized token list,
/// the sorted distinct token multiset with term frequencies, the squared
/// frequency norm, and the sorted distinct character-trigram profile — so
/// the similarity overloads below run allocation-free set merges instead.
///
/// **Equivalence contract.** Every overload taking TokenizedValue operands
/// returns a double bit-identical to its `std::vector<std::string>` /
/// `std::string_view` counterpart in text/similarity.h: integer set sizes
/// are representation-independent, and the floating-point accumulations
/// (cosine norm and dot product) walk tokens in the same sorted order the
/// `std::map`-based implementation iterates. tests/text/token_cache_test.cc
/// pins this for adversarial inputs.
struct TokenizedValue {
  /// NormalizedTokens(text), original order (Monge-Elkan needs it).
  std::vector<std::string> tokens;
  /// Distinct tokens sorted ascending, with their term frequency.
  std::vector<std::pair<std::string, double>> token_counts;
  /// Sum of squared term frequencies, accumulated in sorted token order
  /// (the cosine kernel's per-side norm).
  double freq_norm_sq = 0.0;
  /// Distinct character 3-grams of the raw string, sorted ascending.
  std::vector<std::string> trigrams;

  // --- structure-of-arrays mirrors of the profiles above -----------------
  // The merge kernels stream these contiguous key/frequency columns
  // instead of chasing std::string heads: one u64 compare replaces a
  // byte-wise string compare on (almost) every merge step, and sorted-key
  // runs can be skipped with util/simd.h galloping. The kernels fall back
  // to the string columns whenever the encodings below lose information,
  // so results are bit-identical either way.

  /// Big-endian zero-padded first-8-bytes key of token_counts[i].first.
  /// Unsigned u64 order equals lexicographic order of NUL-free strings up
  /// to the first 8 bytes; ties (equal keys) mean the strings share an
  /// 8-byte prefix and need a full compare unless `token_keys_exact`.
  std::vector<uint64_t> token_keys;
  /// token_counts[i].second, contiguous (the cosine dot's operands).
  std::vector<double> token_freqs;
  /// Key order faithful: every distinct token is NUL-free.
  bool token_keys_ordered = false;
  /// Key equality == string equality: ordered and every token <= 8 bytes.
  bool token_keys_exact = false;

  /// Big-endian zero-padded key of trigrams[i] (grams are 1..3 bytes, so
  /// 4 bytes always hold the whole gram: equality is exact when ordered).
  std::vector<uint32_t> trigram_keys;
  /// Every gram is NUL-free (key order and equality both faithful).
  bool trigram_keys_ordered = false;

  /// Tokenizes and profiles `text` (the raw attribute string).
  static TokenizedValue Of(std::string_view text);
};

/// Jaccard over distinct tokens; bit-identical to
/// JaccardSimilarity(NormalizedTokens(a), NormalizedTokens(b)).
double JaccardSimilarity(const TokenizedValue& a, const TokenizedValue& b);

/// Overlap coefficient over distinct tokens; bit-identical to the
/// vector<string> overload on NormalizedTokens.
double OverlapCoefficient(const TokenizedValue& a, const TokenizedValue& b);

/// Cosine over term-frequency vectors; bit-identical to the vector<string>
/// overload on NormalizedTokens.
double CosineTokenSimilarity(const TokenizedValue& a, const TokenizedValue& b);

/// Symmetric Monge-Elkan over the token lists; bit-identical to the
/// vector<string> overload on NormalizedTokens.
double MongeElkanSymmetric(const TokenizedValue& a, const TokenizedValue& b);

/// Jaccard over the precomputed trigram profiles; bit-identical to
/// TrigramSimilarity(a.text, b.text).
double TrigramSimilarity(const TokenizedValue& a, const TokenizedValue& b);

/// \brief Epoch-lifetime memo of TokenizedValue per distinct attribute
/// string.
///
/// One cache serves one engine batch epoch: perturbation masks of a unit
/// recombine the same attribute strings over and over (and one side of
/// every landmark unit is frozen outright), so the number of distinct
/// strings is orders of magnitude below the number of value occurrences.
/// There is no invalidation — entries live exactly as long as the cache,
/// which lives exactly as long as the epoch.
///
/// **Thread-safety.** Get() is safe to call concurrently: the entry map is
/// sharded by string hash, each shard behind its own mutex, and a miss is
/// profiled while holding only its shard's lock — the first caller computes,
/// every concurrent caller of the same string blocks briefly and then reads
/// the winner's entry, so no profile is ever computed twice and the hit /
/// miss totals are scheduling-independent. Returned references are stable
/// for the cache's lifetime and safe to read lock-free (std::unordered_map
/// never moves nodes), which is what lets the task-graph scheduler
/// interleave unit query stages against one shared cache while the staged
/// path keeps its single-threaded build.
class TokenCache {
 public:
  /// Returns the profile of `text`, computing it on first sight. The
  /// reference is stable for the cache's lifetime.
  const TokenizedValue& Get(const std::string& text);

  /// Lookups that found an existing entry / had to compute one.
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Distinct strings profiled (== misses()).
  size_t size() const;
  /// Entry count per shard, in shard order — the flight deck's occupancy
  /// view (a skewed distribution means one hot shard serializes lookups).
  /// Safe to call concurrently with Get().
  std::vector<size_t> ShardSizes() const;

  /// Adds this cache's hit/miss counts to the process-wide telemetry
  /// counters `text/token_cache_hits` / `text/token_cache_misses` (see
  /// docs/architecture.md, "Metric name contract"). Call once per batch
  /// from a single thread (the engine epilogue); counts already published
  /// are not re-published.
  void PublishTelemetry();

 private:
  /// Shard count: enough that concurrent unit query stages rarely collide
  /// on a shard, small enough that size() stays trivial.
  static constexpr size_t kShards = 16;

  struct Shard {
    // All 16 shards share one rank identity: holding two shards at once is
    // a lock-discipline violation (the cache only ever locks one).
    mutable Mutex mu{"TokenCache::Shard::mu"};
    std::unordered_map<std::string, TokenizedValue> entries GUARDED_BY(mu);
  };

  Shard& ShardOf(const std::string& text);

  std::array<Shard, kShards> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  size_t published_hits_ = 0;
  size_t published_misses_ = 0;
};

}  // namespace landmark

#endif  // LANDMARK_TEXT_TOKEN_CACHE_H_
