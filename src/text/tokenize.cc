#include "text/tokenize.h"

#include <cctype>

#include "util/string_util.h"

namespace landmark {

std::vector<std::string> WordTokens(std::string_view text) {
  return SplitWhitespace(text);
}

namespace {
std::string StripPunct(const std::string& token) {
  size_t b = 0;
  size_t e = token.size();
  while (b < e && std::ispunct(static_cast<unsigned char>(token[b]))) ++b;
  while (e > b && std::ispunct(static_cast<unsigned char>(token[e - 1]))) --e;
  return token.substr(b, e - b);
}
}  // namespace

std::vector<std::string> NormalizedTokens(std::string_view text) {
  std::vector<std::string> raw = SplitWhitespace(text);
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const auto& t : raw) {
    std::string stripped = StripPunct(ToLower(t));
    if (!stripped.empty()) out.push_back(std::move(stripped));
  }
  return out;
}

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  if (s.size() <= q) {
    if (!s.empty()) grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, q));
  }
  return grams;
}

}  // namespace landmark
