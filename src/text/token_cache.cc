#include "text/token_cache.h"

#include <algorithm>
#include <cmath>

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/telemetry/metrics.h"

namespace landmark {

namespace {

/// Sorted distinct elements of `items` (the set the std::set-based kernels
/// build implicitly).
std::vector<std::string> SortedDistinct(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

/// Intersection size of two sorted distinct ranges (linear merge).
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// Jaccard over two sorted distinct profiles; both-empty yields 1.0 like the
/// set-based kernel.
double SortedJaccard(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

TokenizedValue TokenizedValue::Of(std::string_view text) {
  TokenizedValue out;
  out.tokens = NormalizedTokens(text);

  std::vector<std::string> sorted = out.tokens;
  std::sort(sorted.begin(), sorted.end());
  out.token_counts.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    out.token_counts.emplace_back(std::move(sorted[i]),
                                  static_cast<double>(j - i));
    i = j;
  }
  // Accumulated in sorted token order — the iteration order of the
  // std::map the string-path cosine kernel builds, so the sum is the same
  // sequence of double additions.
  for (const auto& [token, freq] : out.token_counts) {
    out.freq_norm_sq += freq * freq;
  }

  out.trigrams = SortedDistinct(QGrams(text, 3));
  return out;
}

double JaccardSimilarity(const TokenizedValue& a, const TokenizedValue& b) {
  if (a.token_counts.empty() && b.token_counts.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.token_counts.size() && j < b.token_counts.size()) {
    const int cmp = a.token_counts[i].first.compare(b.token_counts[j].first);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = a.token_counts.size() + b.token_counts.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double OverlapCoefficient(const TokenizedValue& a, const TokenizedValue& b) {
  if (a.token_counts.empty() && b.token_counts.empty()) return 1.0;
  if (a.token_counts.empty() || b.token_counts.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.token_counts.size() && j < b.token_counts.size()) {
    const int cmp = a.token_counts[i].first.compare(b.token_counts[j].first);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return static_cast<double>(inter) /
         static_cast<double>(
             std::min(a.token_counts.size(), b.token_counts.size()));
}

double CosineTokenSimilarity(const TokenizedValue& a, const TokenizedValue& b) {
  if (a.tokens.empty() && b.tokens.empty()) return 1.0;
  if (a.tokens.empty() || b.tokens.empty()) return 0.0;
  // The string path iterates side a's sorted frequency map, adding
  // fa*fb for every shared token; the merge below visits the shared tokens
  // in the same ascending order, so the dot product is the same sequence of
  // double additions.
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.token_counts.size() && j < b.token_counts.size()) {
    const int cmp = a.token_counts[i].first.compare(b.token_counts[j].first);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      dot += a.token_counts[i].second * b.token_counts[j].second;
      ++i;
      ++j;
    }
  }
  return dot / (std::sqrt(a.freq_norm_sq) * std::sqrt(b.freq_norm_sq));
}

double MongeElkanSymmetric(const TokenizedValue& a, const TokenizedValue& b) {
  return MongeElkanSymmetric(a.tokens, b.tokens);
}

double TrigramSimilarity(const TokenizedValue& a, const TokenizedValue& b) {
  return SortedJaccard(a.trigrams, b.trigrams);
}

TokenCache::Shard& TokenCache::ShardOf(const std::string& text) {
  return shards_[std::hash<std::string>{}(text) % kShards];
}

const TokenizedValue& TokenCache::Get(const std::string& text) {
  Shard& shard = ShardOf(text);
  MutexLock lock(&shard.mu);
  auto it = shard.entries.find(text);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Profiled under the shard lock: a concurrent Get of the same string
  // blocks here instead of computing a second profile, so misses() counts
  // distinct strings exactly, regardless of interleaving.
  misses_.fetch_add(1, std::memory_order_relaxed);
  return shard.entries.emplace(text, TokenizedValue::Of(text)).first->second;
}

size_t TokenCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total += shard.entries.size();
  }
  return total;
}

std::vector<size_t> TokenCache::ShardSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    sizes.push_back(shard.entries.size());
  }
  return sizes;
}

void TokenCache::PublishTelemetry() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const size_t hits = hits_.load(std::memory_order_relaxed);
  const size_t misses = misses_.load(std::memory_order_relaxed);
  if (hits > published_hits_) {
    registry.GetCounter("text/token_cache_hits").Add(hits - published_hits_);
    published_hits_ = hits;
  }
  if (misses > published_misses_) {
    registry.GetCounter("text/token_cache_misses")
        .Add(misses - published_misses_);
    published_misses_ = misses;
  }
}

}  // namespace landmark
