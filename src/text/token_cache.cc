#include "text/token_cache.h"

#include <algorithm>
#include <cmath>

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/simd.h"
#include "util/telemetry/metrics.h"

namespace landmark {

namespace {

/// Big-endian zero-padded pack of the first `width` bytes of `s` into an
/// unsigned integer. For NUL-free strings, unsigned order of the packed
/// keys equals lexicographic order truncated to `width` bytes.
template <typename Key>
Key PackKey(const std::string& s) {
  constexpr size_t width = sizeof(Key);
  Key key = 0;
  const size_t n = std::min(s.size(), width);
  for (size_t i = 0; i < n; ++i) {
    key |= static_cast<Key>(static_cast<unsigned char>(s[i]))
           << ((width - 1 - i) * 8);
  }
  return key;
}

bool ContainsNul(const std::string& s) {
  return s.find('\0') != std::string::npos;
}

/// Sorted distinct elements of `items` (the set the std::set-based kernels
/// build implicitly).
std::vector<std::string> SortedDistinct(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

/// Intersection size of two sorted distinct ranges (linear merge).
size_t SortedIntersectionSize(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// Jaccard over two sorted distinct profiles; both-empty yields 1.0 like the
/// set-based kernel.
double SortedJaccard(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(a, b);
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Whether both profiles can merge on their u64 key columns at all.
bool KeysUsable(const TokenizedValue& a, const TokenizedValue& b) {
  return simd::Enabled() && a.token_keys_ordered && b.token_keys_ordered;
}

/// Sorted-key merge over the token SoA columns. Counts the intersection
/// and, when `dot` is non-null, accumulates the cosine dot product over
/// shared tokens in ascending token order — the exact addition sequence of
/// the string merge. Keys that collide (shared 8-byte prefix on tokens
/// longer than 8 bytes) fall back to a string sub-merge over the equal-key
/// runs, so the result is identical to the string path in every case.
size_t TokenKeyMerge(const TokenizedValue& a, const TokenizedValue& b,
                     double* dot) {
  const uint64_t* ka = a.token_keys.data();
  const uint64_t* kb = b.token_keys.data();
  const size_t na = a.token_keys.size();
  const size_t nb = b.token_keys.size();
  const bool exact = a.token_keys_exact && b.token_keys_exact;
  size_t i = 0, j = 0, inter = 0;
  while (i < na && j < nb) {
    if (ka[i] < kb[j]) {
      // Step inline; the out-of-line gallop only earns its call cost on an
      // actual run (two or more keys below the limit).
      if (++i < na && ka[i] < kb[j]) {
        i = simd::AdvanceWhileLess64(ka, i + 1, na, kb[j]);
      }
    } else if (kb[j] < ka[i]) {
      if (++j < nb && kb[j] < ka[i]) {
        j = simd::AdvanceWhileLess64(kb, j + 1, nb, ka[i]);
      }
    } else if (exact) {
      if (dot != nullptr) *dot += a.token_freqs[i] * b.token_freqs[j];
      ++inter;
      ++i;
      ++j;
    } else {
      // Equal keys on >8-byte tokens: resolve the runs by full compare.
      // Within a run both sides are still sorted lexicographically.
      const uint64_t key = ka[i];
      size_t ia = i, jb = j;
      while (ia < na && ka[ia] == key) ++ia;
      while (jb < nb && kb[jb] == key) ++jb;
      while (i < ia && j < jb) {
        const int cmp =
            a.token_counts[i].first.compare(b.token_counts[j].first);
        if (cmp < 0) {
          ++i;
        } else if (cmp > 0) {
          ++j;
        } else {
          if (dot != nullptr) *dot += a.token_freqs[i] * b.token_freqs[j];
          ++inter;
          ++i;
          ++j;
        }
      }
      i = ia;
      j = jb;
    }
  }
  return inter;
}

/// Intersection size over the u32 trigram key columns (always exact when
/// both sides are ordered: 4 bytes hold a whole 1..3-byte gram).
size_t TrigramKeyIntersection(const TokenizedValue& a,
                              const TokenizedValue& b) {
  const uint32_t* ka = a.trigram_keys.data();
  const uint32_t* kb = b.trigram_keys.data();
  const size_t na = a.trigram_keys.size();
  const size_t nb = b.trigram_keys.size();
  size_t i = 0, j = 0, inter = 0;
  while (i < na && j < nb) {
    if (ka[i] < kb[j]) {
      if (++i < na && ka[i] < kb[j]) {
        i = simd::AdvanceWhileLess32(ka, i + 1, na, kb[j]);
      }
    } else if (kb[j] < ka[i]) {
      if (++j < nb && kb[j] < ka[i]) {
        j = simd::AdvanceWhileLess32(kb, j + 1, nb, ka[i]);
      }
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

}  // namespace

TokenizedValue TokenizedValue::Of(std::string_view text) {
  TokenizedValue out;
  out.tokens = NormalizedTokens(text);

  std::vector<std::string> sorted = out.tokens;
  std::sort(sorted.begin(), sorted.end());
  out.token_counts.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    out.token_counts.emplace_back(std::move(sorted[i]),
                                  static_cast<double>(j - i));
    i = j;
  }
  // Accumulated in sorted token order — the iteration order of the
  // std::map the string-path cosine kernel builds, so the sum is the same
  // sequence of double additions.
  for (const auto& [token, freq] : out.token_counts) {
    out.freq_norm_sq += freq * freq;
  }

  out.trigrams = SortedDistinct(QGrams(text, 3));

  // SoA key columns (see the header): one u64/u32 per distinct element,
  // contiguous, so the merge kernels stream integers instead of strings.
  out.token_keys.reserve(out.token_counts.size());
  out.token_freqs.reserve(out.token_counts.size());
  out.token_keys_ordered = true;
  out.token_keys_exact = true;
  for (const auto& [token, freq] : out.token_counts) {
    out.token_keys.push_back(PackKey<uint64_t>(token));
    out.token_freqs.push_back(freq);
    if (ContainsNul(token)) out.token_keys_ordered = false;
    if (token.size() > 8) out.token_keys_exact = false;
  }
  out.token_keys_exact &= out.token_keys_ordered;

  out.trigram_keys.reserve(out.trigrams.size());
  out.trigram_keys_ordered = true;
  for (const std::string& gram : out.trigrams) {
    out.trigram_keys.push_back(PackKey<uint32_t>(gram));
    if (gram.size() > 4 || ContainsNul(gram)) {
      out.trigram_keys_ordered = false;
    }
  }
  return out;
}

double JaccardSimilarity(const TokenizedValue& a, const TokenizedValue& b) {
  if (a.token_counts.empty() && b.token_counts.empty()) return 1.0;
  size_t inter = 0;
  if (KeysUsable(a, b)) {
    inter = TokenKeyMerge(a, b, /*dot=*/nullptr);
  } else {
    size_t i = 0, j = 0;
    while (i < a.token_counts.size() && j < b.token_counts.size()) {
      const int cmp = a.token_counts[i].first.compare(b.token_counts[j].first);
      if (cmp < 0) {
        ++i;
      } else if (cmp > 0) {
        ++j;
      } else {
        ++inter;
        ++i;
        ++j;
      }
    }
  }
  const size_t uni = a.token_counts.size() + b.token_counts.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double OverlapCoefficient(const TokenizedValue& a, const TokenizedValue& b) {
  if (a.token_counts.empty() && b.token_counts.empty()) return 1.0;
  if (a.token_counts.empty() || b.token_counts.empty()) return 0.0;
  size_t inter = 0;
  if (KeysUsable(a, b)) {
    inter = TokenKeyMerge(a, b, /*dot=*/nullptr);
  } else {
    size_t i = 0, j = 0;
    while (i < a.token_counts.size() && j < b.token_counts.size()) {
      const int cmp = a.token_counts[i].first.compare(b.token_counts[j].first);
      if (cmp < 0) {
        ++i;
      } else if (cmp > 0) {
        ++j;
      } else {
        ++inter;
        ++i;
        ++j;
      }
    }
  }
  return static_cast<double>(inter) /
         static_cast<double>(
             std::min(a.token_counts.size(), b.token_counts.size()));
}

double CosineTokenSimilarity(const TokenizedValue& a, const TokenizedValue& b) {
  if (a.tokens.empty() && b.tokens.empty()) return 1.0;
  if (a.tokens.empty() || b.tokens.empty()) return 0.0;
  // The string path iterates side a's sorted frequency map, adding
  // fa*fb for every shared token; both merges below visit the shared tokens
  // in the same ascending order, so the dot product is the same sequence of
  // double additions.
  double dot = 0.0;
  if (KeysUsable(a, b)) {
    TokenKeyMerge(a, b, &dot);
  } else {
    size_t i = 0, j = 0;
    while (i < a.token_counts.size() && j < b.token_counts.size()) {
      const int cmp = a.token_counts[i].first.compare(b.token_counts[j].first);
      if (cmp < 0) {
        ++i;
      } else if (cmp > 0) {
        ++j;
      } else {
        dot += a.token_counts[i].second * b.token_counts[j].second;
        ++i;
        ++j;
      }
    }
  }
  return dot / (std::sqrt(a.freq_norm_sq) * std::sqrt(b.freq_norm_sq));
}

double MongeElkanSymmetric(const TokenizedValue& a, const TokenizedValue& b) {
  return MongeElkanSymmetric(a.tokens, b.tokens);
}

double TrigramSimilarity(const TokenizedValue& a, const TokenizedValue& b) {
  if (simd::Enabled() && a.trigram_keys_ordered && b.trigram_keys_ordered) {
    if (a.trigrams.empty() && b.trigrams.empty()) return 1.0;
    const size_t inter = TrigramKeyIntersection(a, b);
    const size_t uni = a.trigrams.size() + b.trigrams.size() - inter;
    return static_cast<double>(inter) / static_cast<double>(uni);
  }
  return SortedJaccard(a.trigrams, b.trigrams);
}

TokenCache::Shard& TokenCache::ShardOf(const std::string& text) {
  return shards_[std::hash<std::string>{}(text) % kShards];
}

const TokenizedValue& TokenCache::Get(const std::string& text) {
  Shard& shard = ShardOf(text);
  MutexLock lock(&shard.mu);
  auto it = shard.entries.find(text);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Profiled under the shard lock: a concurrent Get of the same string
  // blocks here instead of computing a second profile, so misses() counts
  // distinct strings exactly, regardless of interleaving.
  misses_.fetch_add(1, std::memory_order_relaxed);
  return shard.entries.emplace(text, TokenizedValue::Of(text)).first->second;
}

size_t TokenCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total += shard.entries.size();
  }
  return total;
}

std::vector<size_t> TokenCache::ShardSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    sizes.push_back(shard.entries.size());
  }
  return sizes;
}

void TokenCache::PublishTelemetry() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const size_t hits = hits_.load(std::memory_order_relaxed);
  const size_t misses = misses_.load(std::memory_order_relaxed);
  if (hits > published_hits_) {
    registry.GetCounter("text/token_cache_hits").Add(hits - published_hits_);
    published_hits_ = hits;
  }
  if (misses > published_misses_) {
    registry.GetCounter("text/token_cache_misses")
        .Add(misses - published_misses_);
    published_misses_ = misses;
  }
}

}  // namespace landmark
