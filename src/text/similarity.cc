#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "text/tokenize.h"
#include "util/simd.h"

namespace landmark {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return n;

  // Myers' bit-parallel algorithm computes the identical distance (it is
  // the same DP, carried in bit deltas) in one word-op column step instead
  // of an O(m) row — the dominant cost of the edit-distance feature. Gated
  // by the simd switch only so `--no-simd` keeps a pure scalar oracle.
  if (simd::Enabled() && m <= 64) {
    return simd::MyersLevenshtein(a, b);
  }

  std::vector<size_t> prev(m + 1);
  std::vector<size_t> curr(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = i;

  for (size_t j = 1; j <= n; ++j) {
    curr[0] = j;
    for (size_t i = 1; i <= m; ++i) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[i] = std::min({prev[i] + 1, curr[i - 1] + 1, prev[i - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;

  // Bit-parallel match counting picks the same greedy matches with one
  // word op per character of `a` (util/simd.h); identical counts feed the
  // identical formula, so the result is bit-for-bit the scalar one. Gated
  // by the simd switch only so `--no-simd` keeps a pure scalar oracle.
  if (simd::Enabled() && la <= 64 && lb <= 64) {
    size_t matches = 0;
    size_t transpositions = 0;
    simd::JaroCounts(a, b, &matches, &transpositions);
    if (matches == 0) return 0.0;
    const double m = static_cast<double>(matches);
    return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
  }

  const size_t window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false);
  std::vector<bool> b_matched(lb, false);

  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions over the matched subsequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  constexpr double kScaling = 0.1;
  return jaro + prefix * kScaling * (1.0 - jaro);
}

namespace {
size_t DistinctIntersectionSize(const std::set<std::string>& sa,
                                const std::set<std::string>& sb) {
  size_t n = 0;
  const std::set<std::string>& small = sa.size() <= sb.size() ? sa : sb;
  const std::set<std::string>& large = sa.size() <= sb.size() ? sb : sa;
  for (const auto& t : small) {
    if (large.count(t)) ++n;
  }
  return n;
}
}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t inter = DistinctIntersectionSize(sa, sb);
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  const size_t inter = DistinctIntersectionSize(sa, sb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t inter = DistinctIntersectionSize(sa, sb);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size());
}

double CosineTokenSimilarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::map<std::string, double> fa, fb;
  for (const auto& t : a) fa[t] += 1.0;
  for (const auto& t : b) fb[t] += 1.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [t, f] : fa) {
    na += f * f;
    auto it = fb.find(t);
    if (it != fb.end()) dot += f * it->second;
  }
  for (const auto& [t, f] : fb) nb += f * f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const auto& ta : a) {
    double best = 0.0;
    for (const auto& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double MongeElkanSymmetric(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  return 0.5 * (MongeElkanSimilarity(a, b) + MongeElkanSimilarity(b, a));
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  return JaccardSimilarity(QGrams(a, 3), QGrams(b, 3));
}

double NumericSimilarity(double a, double b) {
  if (a == b) return 1.0;
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 1.0;
  const double sim = 1.0 - std::abs(a - b) / denom;
  return std::clamp(sim, 0.0, 1.0);
}

double ExactMatch(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

}  // namespace landmark
