#ifndef LANDMARK_TEXT_TFIDF_H_
#define LANDMARK_TEXT_TFIDF_H_

#include <map>
#include <string>
#include <vector>

#include "text/vocab.h"

namespace landmark {

/// \brief Sparse TF-IDF vectorizer over token lists.
///
/// Fit on a corpus of documents (token lists); transforms documents into
/// sparse L2-normalized TF-IDF vectors. Used by the soft-TF-IDF attribute
/// feature and by the datagen hard-negative miner.
class TfIdfVectorizer {
 public:
  /// A sparse vector: (token id, weight), ids strictly increasing.
  using SparseVector = std::vector<std::pair<size_t, double>>;

  /// Computes document frequencies over `corpus`.
  void Fit(const std::vector<std::vector<std::string>>& corpus);

  /// Transforms one document; unseen tokens are ignored. The result is
  /// L2-normalized (or empty when no token is known).
  SparseVector Transform(const std::vector<std::string>& doc) const;

  /// Cosine similarity of two sparse vectors.
  static double Cosine(const SparseVector& a, const SparseVector& b);

  /// Smoothed idf of a token id: log((1+N) / (1+df)) + 1.
  double Idf(size_t token_id) const;

  size_t vocab_size() const { return vocab_.size(); }
  const Vocabulary& vocab() const { return vocab_; }

 private:
  Vocabulary vocab_;
  std::vector<size_t> doc_freq_;
  size_t num_docs_ = 0;
};

}  // namespace landmark

#endif  // LANDMARK_TEXT_TFIDF_H_
