#ifndef LANDMARK_EM_EM_MODEL_H_
#define LANDMARK_EM_EM_MODEL_H_

#include <string>
#include <vector>

#include "data/pair_record.h"
#include "em/prepared_batch.h"
#include "util/result.h"

namespace landmark {

/// \brief The black-box interface the explainers see.
///
/// An EM model maps a pair of entities to the probability that they refer to
/// the same real-world entity. Explainers only ever call PredictProba /
/// PredictProbaBatch — they never look inside — which is what makes
/// Landmark Explanation model-agnostic (paper §3).
///
/// **Thread-safety contract.** The ExplainerEngine shards its deduplicated
/// query batch across worker threads, so every PredictProba* method must be
/// safe to call concurrently from multiple threads: implementations are
/// const and must not mutate any state (no lazy caches, no shared buffers)
/// once training has finished. All bundled models (logreg, forest, MLP,
/// embedding, rule, heuristic) are immutable after Train and satisfy this;
/// custom models plugged into the engine must as well.
class EmModel {
 public:
  virtual ~EmModel() = default;

  /// Probability in [0, 1] that the pair is a match.
  virtual double PredictProba(const PairRecord& pair) const = 0;

  /// Batch version; default delegates to PredictProbaRange over the whole
  /// vector.
  virtual std::vector<double> PredictProbaBatch(
      const std::vector<PairRecord>& pairs) const;

  /// Scores pairs[begin, end) into out[0, end-begin). The engine's query
  /// stage calls this concurrently on disjoint ranges of one batch; default
  /// loops over PredictProba. Models with an internally vectorized batch
  /// path can override it once and serve both entry points.
  ///
  /// The default implementation reports per-model-type telemetry
  /// (`model/query_latency[/<name>]`, `model/queries[/<name>]` — see
  /// docs/architecture.md "Telemetry"); overrides that bypass it should
  /// record the same metrics to keep stage breakdowns comparable.
  virtual void PredictProbaRange(const std::vector<PairRecord>& pairs,
                                 size_t begin, size_t end, double* out) const;

  /// Scores prepared.pairs()[begin, end) into out[0, end-begin), the
  /// engine's query fast path: rows carry resolved token profiles, so
  /// feature-based models skip tokenization entirely. Must be bit-identical
  /// to PredictProbaRange on the same rows — the engine's determinism
  /// contract extends to toggling the fast path on and off.
  ///
  /// The default falls back to PredictProbaRange on the raw pairs, so
  /// custom models keep working unchanged (they just don't get the
  /// speedup). Overrides should call ReportQueryTelemetry once per range to
  /// keep the per-type metrics comparable with the string path.
  virtual void PredictProbaPrepared(const PreparedPairBatch& prepared,
                                    size_t begin, size_t end,
                                    double* out) const;

  /// Hard label at the given decision threshold (the paper uses 0.5 and
  /// discusses 0.4 as an alternative).
  MatchLabel Predict(const PairRecord& pair, double threshold = 0.5) const {
    return PredictProba(pair) >= threshold ? MatchLabel::kMatch
                                           : MatchLabel::kNonMatch;
  }

  /// Human-readable model name for reports.
  virtual std::string name() const = 0;

  /// Per-attribute importance as seen from *inside* the model (for the
  /// attribute-based evaluation, Table 3). Models that cannot report it
  /// return NotImplemented.
  virtual Result<std::vector<double>> AttributeWeights() const {
    return Status::NotImplemented(name() + " has no attribute weights");
  }

 protected:
  /// Records the per-model-type query metrics (`model/queries[/<name>]`,
  /// `model/query_latency[/<name>]`, `model/query_batch_seconds`) for one
  /// scored range. Shared by the PredictProbaRange default and the
  /// PredictProbaPrepared overrides; call once per range, never per pair.
  void ReportQueryTelemetry(size_t num_pairs, double seconds) const;
};

}  // namespace landmark

#endif  // LANDMARK_EM_EM_MODEL_H_
