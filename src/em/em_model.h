#ifndef LANDMARK_EM_EM_MODEL_H_
#define LANDMARK_EM_EM_MODEL_H_

#include <string>
#include <vector>

#include "data/pair_record.h"
#include "util/result.h"

namespace landmark {

/// \brief The black-box interface the explainers see.
///
/// An EM model maps a pair of entities to the probability that they refer to
/// the same real-world entity. Explainers only ever call PredictProba /
/// PredictProbaBatch — they never look inside — which is what makes
/// Landmark Explanation model-agnostic (paper §3).
class EmModel {
 public:
  virtual ~EmModel() = default;

  /// Probability in [0, 1] that the pair is a match.
  virtual double PredictProba(const PairRecord& pair) const = 0;

  /// Batch version; default loops over PredictProba.
  virtual std::vector<double> PredictProbaBatch(
      const std::vector<PairRecord>& pairs) const;

  /// Hard label at the given decision threshold (the paper uses 0.5 and
  /// discusses 0.4 as an alternative).
  MatchLabel Predict(const PairRecord& pair, double threshold = 0.5) const {
    return PredictProba(pair) >= threshold ? MatchLabel::kMatch
                                           : MatchLabel::kNonMatch;
  }

  /// Human-readable model name for reports.
  virtual std::string name() const = 0;

  /// Per-attribute importance as seen from *inside* the model (for the
  /// attribute-based evaluation, Table 3). Models that cannot report it
  /// return NotImplemented.
  virtual Result<std::vector<double>> AttributeWeights() const {
    return Status::NotImplemented(name() + " has no attribute weights");
  }
};

}  // namespace landmark

#endif  // LANDMARK_EM_EM_MODEL_H_
