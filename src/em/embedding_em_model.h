#ifndef LANDMARK_EM_EMBEDDING_EM_MODEL_H_
#define LANDMARK_EM_EMBEDDING_EM_MODEL_H_

#include <memory>
#include <string>

#include "data/em_dataset.h"
#include "em/em_model.h"
#include "em/logreg_em_model.h"
#include "ml/mlp.h"

namespace landmark {

/// \brief Options for the neural EM model.
struct EmbeddingEmModelOptions {
  /// Token embedding dimensionality (hashed random projections).
  size_t embedding_dim = 16;
  MlpOptions mlp;
  double valid_fraction = 0.2;
  double test_fraction = 0.2;
  uint64_t split_seed = 17;
  uint64_t hash_seed = 0x5bd1e995;
};

/// \brief A miniature DeepER: distributed tuple representations + a neural
/// classifier, built entirely from scratch.
///
/// Each token is mapped to a deterministic pseudo-random unit vector
/// (feature hashing — the offline stand-in for pretrained word embeddings,
/// which this environment does not have). An attribute embeds as the mean
/// of its token vectors; each attribute pair contributes the element-wise
/// |l - r| and l ⊙ r composition vectors (DeepER's similarity composition);
/// the concatenation feeds a ReLU MLP.
///
/// For the explainers this is just another opaque EmModel — and a genuinely
/// nonlinear, sub-symbolic one, closing the loop on the paper's motivation
/// (explaining deep EM models).
class EmbeddingEmModel : public EmModel {
 public:
  static Result<std::unique_ptr<EmbeddingEmModel>> Train(
      const EmDataset& dataset, const EmbeddingEmModelOptions& options = {});

  double PredictProba(const PairRecord& pair) const override;
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override;
  std::string name() const override { return "embedding-em"; }

  const EmModelReport& report() const { return report_; }
  size_t num_parameters() const { return mlp_.num_parameters(); }

  /// Deterministic unit embedding of one token (exposed for tests).
  Vector EmbedToken(const std::string& token) const;

  /// The pair's composed feature vector (exposed for tests).
  Vector Compose(const PairRecord& pair) const;

 private:
  EmbeddingEmModel(std::shared_ptr<const Schema> schema,
                   const EmbeddingEmModelOptions& options)
      : schema_(std::move(schema)), options_(options) {}

  /// Mean token embedding of one attribute value (zero vector when null).
  Vector EmbedValue(const Value& value) const;

  /// Mean token embedding of an already-tokenized value (zero when empty).
  Vector EmbedTokens(const std::vector<std::string>& tokens) const;

  /// Compose() from resolved token profiles instead of raw values.
  Vector ComposePrepared(const PreparedPairBatch& prepared,
                         size_t pair_index) const;

  std::shared_ptr<const Schema> schema_;
  EmbeddingEmModelOptions options_;
  Mlp mlp_;
  EmModelReport report_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_EMBEDDING_EM_MODEL_H_
