#ifndef LANDMARK_EM_BLOCKING_H_
#define LANDMARK_EM_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"
#include "util/result.h"

namespace landmark {

/// \brief Candidate pair produced by blocking: indices into the two input
/// entity collections plus the blocking score that ranked it.
struct CandidatePair {
  size_t left_index = 0;
  size_t right_index = 0;
  double score = 0.0;  // shared-token evidence (idf-weighted)
};

/// \brief Configuration for TokenBlocker.
struct BlockingOptions {
  /// Candidates must share at least this many distinct tokens.
  size_t min_shared_tokens = 1;
  /// Tokens appearing in more than this fraction of left entities are
  /// treated as stop words and never generate candidates (prevents the
  /// "digital"/"camera" flood).
  double max_token_frequency = 0.2;
  /// Keep only the best `top_k` candidates per left entity (0 = all).
  size_t top_k_per_left = 10;
};

/// \brief Token-based inverted-index blocker over two entity collections.
///
/// EM benchmarks like Magellan's are *already blocked* candidate sets; this
/// component supplies the missing upstream stage so the library covers the
/// full match pipeline (block -> match -> explain), as exercised by
/// examples/end_to_end_pipeline. Candidates are scored by the sum of inverse
/// document frequencies of their shared tokens.
class TokenBlocker {
 public:
  explicit TokenBlocker(BlockingOptions options = {}) : options_(options) {}

  /// Builds the index over `left` and probes it with `right`. Both
  /// collections must share one schema. Returns candidates sorted by
  /// (left_index, descending score).
  Result<std::vector<CandidatePair>> Block(
      const std::vector<Record>& left, const std::vector<Record>& right) const;

 private:
  BlockingOptions options_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_BLOCKING_H_
