#include "em/heuristic_model.h"

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

JaccardEmModel::JaccardEmModel(std::vector<double> attribute_weights)
    : attribute_weights_(std::move(attribute_weights)) {}

double JaccardEmModel::PredictProba(const PairRecord& pair) const {
  const size_t num_attrs = pair.left.num_attributes();
  LANDMARK_CHECK(num_attrs == pair.right.num_attributes());
  LANDMARK_CHECK(attribute_weights_.empty() ||
                 attribute_weights_.size() == num_attrs);

  double total = 0.0;
  double weight_sum = 0.0;
  for (size_t a = 0; a < num_attrs; ++a) {
    const double w =
        attribute_weights_.empty() ? 1.0 : attribute_weights_[a];
    if (w <= 0.0) continue;
    const Value& lv = pair.left.value(a);
    const Value& rv = pair.right.value(a);
    double sim = 0.0;
    if (!lv.is_null() && !rv.is_null()) {
      sim = JaccardSimilarity(NormalizedTokens(lv.text()),
                              NormalizedTokens(rv.text()));
    }
    total += w * sim;
    weight_sum += w;
  }
  return weight_sum == 0.0 ? 0.0 : total / weight_sum;
}

void JaccardEmModel::PredictProbaPrepared(const PreparedPairBatch& prepared,
                                          size_t begin, size_t end,
                                          double* out) const {
  if (begin == end) return;
  const size_t num_attrs = prepared.num_attributes();
  LANDMARK_CHECK(attribute_weights_.empty() ||
                 attribute_weights_.size() == num_attrs);
  LANDMARK_TRACE_SPAN("model/query");
  LANDMARK_ACTIVITY("model/query");
  Timer timer;
  for (size_t i = begin; i < end; ++i) {
    double total = 0.0;
    double weight_sum = 0.0;
    for (size_t a = 0; a < num_attrs; ++a) {
      const double w =
          attribute_weights_.empty() ? 1.0 : attribute_weights_[a];
      if (w <= 0.0) continue;
      const PreparedValue& lv = prepared.value(i, a, EntitySide::kLeft);
      const PreparedValue& rv = prepared.value(i, a, EntitySide::kRight);
      double sim = 0.0;
      if (!lv.is_null() && !rv.is_null()) {
        sim = JaccardSimilarity(*lv.tokens, *rv.tokens);
      }
      total += w * sim;
      weight_sum += w;
    }
    out[i - begin] = weight_sum == 0.0 ? 0.0 : total / weight_sum;
  }
  ReportQueryTelemetry(end - begin, timer.ElapsedSeconds());
}

Result<std::vector<double>> JaccardEmModel::AttributeWeights() const {
  if (attribute_weights_.empty()) {
    return Status::FailedPrecondition(
        "uniform jaccard-em has no fixed attribute count; construct with "
        "explicit weights to expose them");
  }
  return attribute_weights_;
}

}  // namespace landmark
