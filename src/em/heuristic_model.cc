#include "em/heuristic_model.h"

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace landmark {

JaccardEmModel::JaccardEmModel(std::vector<double> attribute_weights)
    : attribute_weights_(std::move(attribute_weights)) {}

double JaccardEmModel::PredictProba(const PairRecord& pair) const {
  const size_t num_attrs = pair.left.num_attributes();
  LANDMARK_CHECK(num_attrs == pair.right.num_attributes());
  LANDMARK_CHECK(attribute_weights_.empty() ||
                 attribute_weights_.size() == num_attrs);

  double total = 0.0;
  double weight_sum = 0.0;
  for (size_t a = 0; a < num_attrs; ++a) {
    const double w =
        attribute_weights_.empty() ? 1.0 : attribute_weights_[a];
    if (w <= 0.0) continue;
    const Value& lv = pair.left.value(a);
    const Value& rv = pair.right.value(a);
    double sim = 0.0;
    if (!lv.is_null() && !rv.is_null()) {
      sim = JaccardSimilarity(NormalizedTokens(lv.text()),
                              NormalizedTokens(rv.text()));
    }
    total += w * sim;
    weight_sum += w;
  }
  return weight_sum == 0.0 ? 0.0 : total / weight_sum;
}

Result<std::vector<double>> JaccardEmModel::AttributeWeights() const {
  if (attribute_weights_.empty()) {
    return Status::FailedPrecondition(
        "uniform jaccard-em has no fixed attribute count; construct with "
        "explicit weights to expose them");
  }
  return attribute_weights_;
}

}  // namespace landmark
