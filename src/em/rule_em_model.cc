#include "em/rule_em_model.h"

#include <algorithm>
#include <sstream>

#include "util/arena.h"
#include "util/string_util.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

bool MatchRule::Fires(const Vector& features) const {
  return Fires(features.data());
}

bool MatchRule::Fires(const double* features) const {
  for (const Predicate& p : predicates) {
    if (features[p.feature] < p.threshold) return false;
  }
  return !predicates.empty();
}

std::string MatchRule::ToString(const FeatureExtractor& extractor) const {
  std::ostringstream os;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) os << " AND ";
    os << extractor.feature_name(predicates[i].feature) << " >= "
       << FormatDouble(predicates[i].threshold, 2);
  }
  os << " => match (confidence " << FormatDouble(confidence, 3) << ", support "
     << support << ")";
  return os.str();
}

namespace {

struct RuleStats {
  size_t covered_positives = 0;
  size_t covered_negatives = 0;

  double Precision() const {
    const size_t total = covered_positives + covered_negatives;
    return total == 0
               ? 0.0
               : static_cast<double>(covered_positives) /
                     static_cast<double>(total);
  }
};

/// Coverage of `rule` over the still-active examples.
RuleStats Evaluate(const MatchRule& rule, const Matrix& x,
                   const std::vector<int>& y,
                   const std::vector<uint8_t>& active) {
  RuleStats stats;
  for (size_t i = 0; i < x.rows(); ++i) {
    if (!active[i]) continue;
    if (!rule.Fires(x.row(i))) continue;
    if (y[i] == 1) {
      ++stats.covered_positives;
    } else {
      ++stats.covered_negatives;
    }
  }
  return stats;
}

}  // namespace

Result<std::unique_ptr<RuleEmModel>> RuleEmModel::Train(
    const EmDataset& dataset, const RuleEmModelOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (options.thresholds.empty()) {
    return Status::InvalidArgument("need at least one candidate threshold");
  }
  auto model = std::unique_ptr<RuleEmModel>(
      new RuleEmModel(dataset.entity_schema(), options));

  Rng rng(options.split_seed);
  LANDMARK_ASSIGN_OR_RETURN(
      EmDatasetSplit split,
      dataset.Split(options.valid_fraction, options.test_fraction, rng));

  Matrix x = model->extractor_->ExtractBatch(dataset, split.train);
  std::vector<int> y;
  y.reserve(split.train.size());
  for (size_t i : split.train) {
    y.push_back(dataset.pair(i).is_match() ? 1 : 0);
  }

  // Sequential covering: learn one high-precision rule, deactivate the
  // positives it covers, repeat.
  std::vector<uint8_t> active(y.size(), 1);
  size_t remaining_positives = 0;
  for (int label : y) remaining_positives += static_cast<size_t>(label);

  while (model->rules_.size() < options.max_rules &&
         remaining_positives >= options.min_support) {
    MatchRule rule;
    RuleStats rule_stats;
    bool improved = true;
    while (improved &&
           rule.predicates.size() < options.max_predicates_per_rule &&
           rule_stats.Precision() < options.target_precision) {
      improved = false;
      MatchRule best = rule;
      RuleStats best_stats = rule_stats;
      for (size_t f = 0; f < model->extractor_->num_features(); ++f) {
        bool f_used = false;
        for (const auto& p : rule.predicates) f_used |= p.feature == f;
        if (f_used) continue;
        for (double threshold : options.thresholds) {
          MatchRule candidate = rule;
          candidate.predicates.push_back(MatchRule::Predicate{f, threshold});
          RuleStats stats = Evaluate(candidate, x, y, active);
          if (stats.covered_positives < options.min_support) continue;
          const bool better =
              stats.Precision() > best_stats.Precision() ||
              (stats.Precision() == best_stats.Precision() &&
               stats.covered_positives > best_stats.covered_positives);
          if (better && !best.predicates.empty()) {
            best = candidate;
            best_stats = stats;
            improved = true;
          } else if (best.predicates.empty()) {
            best = candidate;
            best_stats = stats;
            improved = true;
          }
        }
      }
      if (improved) {
        rule = best;
        rule_stats = best_stats;
      }
    }
    if (rule.predicates.empty() ||
        rule_stats.covered_positives < options.min_support ||
        rule_stats.Precision() < 0.5) {
      break;  // no acceptable rule left
    }
    rule.confidence = rule_stats.Precision();
    rule.support = rule_stats.covered_positives;
    // Deactivate covered positives (negatives stay to constrain later rules).
    for (size_t i = 0; i < y.size(); ++i) {
      if (!active[i] || y[i] != 1) continue;
      if (rule.Fires(x.row(i))) {
        active[i] = 0;
        --remaining_positives;
      }
    }
    model->rules_.push_back(std::move(rule));
  }

  if (model->rules_.empty()) {
    return Status::Internal("rule learner found no acceptable rule");
  }

  std::vector<int> y_test, y_pred;
  for (size_t i : split.test) {
    y_test.push_back(dataset.pair(i).is_match() ? 1 : 0);
    y_pred.push_back(model->PredictProba(dataset.pair(i)) >= 0.5 ? 1 : 0);
  }
  if (!y_test.empty()) {
    model->report_.confusion = ComputeConfusion(y_test, y_pred);
    model->report_.f1 = model->report_.confusion.F1();
    model->report_.precision = model->report_.confusion.Precision();
    model->report_.recall = model->report_.confusion.Recall();
    model->report_.accuracy = model->report_.confusion.Accuracy();
  }
  return model;
}

double RuleEmModel::PredictProba(const PairRecord& pair) const {
  Vector features = extractor_->Extract(pair);
  double best = options_.default_probability;
  for (const MatchRule& rule : rules_) {
    if (rule.Fires(features)) best = std::max(best, rule.confidence);
  }
  return best;
}

void RuleEmModel::PredictProbaPrepared(const PreparedPairBatch& prepared,
                                       size_t begin, size_t end,
                                       double* out) const {
  if (begin == end) return;
  LANDMARK_TRACE_SPAN("model/query");
  LANDMARK_ACTIVITY("model/query");
  Timer timer;
  ArenaFrame frame;
  double* features = frame.arena().AllocateDoubles(extractor_->num_features());
  for (size_t i = begin; i < end; ++i) {
    extractor_->ExtractPrepared(prepared, i, features);
    double best = options_.default_probability;
    for (const MatchRule& rule : rules_) {
      if (rule.Fires(features)) best = std::max(best, rule.confidence);
    }
    out[i - begin] = best;
  }
  ReportQueryTelemetry(end - begin, timer.ElapsedSeconds());
}

Result<std::vector<double>> RuleEmModel::AttributeWeights() const {
  if (rules_.empty()) {
    return Status::FailedPrecondition("model is not trained");
  }
  std::vector<double> weights(
      extractor_->entity_schema()->num_attributes(), 0.0);
  for (const MatchRule& rule : rules_) {
    for (const auto& predicate : rule.predicates) {
      weights[extractor_->attribute_of_feature(predicate.feature)] +=
          rule.confidence;
    }
  }
  return weights;
}

std::string RuleEmModel::RulesToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < rules_.size(); ++i) {
    os << "R" << i + 1 << ": " << rules_[i].ToString(*extractor_) << "\n";
  }
  return os.str();
}

}  // namespace landmark
