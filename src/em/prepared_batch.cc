#include "em/prepared_batch.h"

#include "util/check.h"

namespace landmark {

LandmarkFeatureContext MakeLandmarkFeatureContext(
    const PairRecord& pair, std::optional<EntitySide> frozen_side,
    TokenCache& cache) {
  LandmarkFeatureContext context;
  context.frozen_side = frozen_side;
  if (!frozen_side.has_value()) return context;
  const Record& frozen = pair.entity(*frozen_side);
  const size_t num_attributes =
      frozen.schema() != nullptr ? frozen.schema()->num_attributes() : 0;
  context.frozen_values.reserve(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    context.frozen_values.push_back(PrepareValue(frozen.value(a), cache));
  }
  return context;
}

PreparedPairBatch::PreparedPairBatch(const std::vector<PairRecord>& pairs,
                                     TokenCache* cache)
    : pairs_(&pairs), cache_(cache) {
  LANDMARK_CHECK(cache_ != nullptr);
  if (!pairs.empty() && pairs.front().left.schema() != nullptr) {
    num_attributes_ = pairs.front().left.schema()->num_attributes();
  }
  value_ptrs_.resize(pairs.size() * num_attributes_ * 2, nullptr);
  token_ptrs_.resize(pairs.size() * num_attributes_ * 2, nullptr);
}

void PreparedPairBatch::PrepareRange(size_t begin, size_t end,
                                     const LandmarkFeatureContext& context) {
  LANDMARK_CHECK(begin <= end && end <= pairs_->size());
  if (context.frozen_side.has_value()) {
    LANDMARK_CHECK(context.frozen_values.size() == num_attributes_);
  }
  for (size_t p = begin; p < end; ++p) {
    const PairRecord& pair = (*pairs_)[p];
    for (size_t a = 0; a < num_attributes_; ++a) {
      for (EntitySide side : {EntitySide::kLeft, EntitySide::kRight}) {
        const size_t slot = SlotIndex(p, a, side);
        PreparedValue prepared;
        if (context.frozen_side == side) {
          prepared = context.frozen_values[a];
        } else {
          prepared = PrepareValue(pair.entity(side).value(a), *cache_);
        }
        value_ptrs_[slot] = prepared.value;
        token_ptrs_[slot] = prepared.tokens;
      }
    }
  }
}

void PreparedPairBatch::PrepareRange(size_t begin, size_t end) {
  PrepareRange(begin, end, LandmarkFeatureContext{});
}

PreparedValue PreparedPairBatch::value(size_t pair_index, size_t attr,
                                       EntitySide side) const {
  LANDMARK_CHECK(pair_index < pairs_->size() && attr < num_attributes_);
  const size_t slot = SlotIndex(pair_index, attr, side);
  PreparedValue prepared{value_ptrs_[slot], token_ptrs_[slot]};
  LANDMARK_CHECK_MSG(prepared.value != nullptr, "row not prepared");
  return prepared;
}

}  // namespace landmark
