#include "em/prepared_batch.h"

#include "util/check.h"

namespace landmark {

LandmarkFeatureContext MakeLandmarkFeatureContext(
    const PairRecord& pair, std::optional<EntitySide> frozen_side,
    TokenCache& cache) {
  LandmarkFeatureContext context;
  context.frozen_side = frozen_side;
  if (!frozen_side.has_value()) return context;
  const Record& frozen = pair.entity(*frozen_side);
  const size_t num_attributes =
      frozen.schema() != nullptr ? frozen.schema()->num_attributes() : 0;
  context.frozen_values.reserve(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    context.frozen_values.push_back(PrepareValue(frozen.value(a), cache));
  }
  return context;
}

PreparedPairBatch::PreparedPairBatch(const std::vector<PairRecord>& pairs,
                                     TokenCache* cache)
    : pairs_(&pairs), cache_(cache) {
  LANDMARK_CHECK(cache_ != nullptr);
  if (!pairs.empty() && pairs.front().left.schema() != nullptr) {
    num_attributes_ = pairs.front().left.schema()->num_attributes();
  }
  values_.resize(pairs.size() * num_attributes_ * 2);
}

void PreparedPairBatch::PrepareRange(size_t begin, size_t end,
                                     const LandmarkFeatureContext& context) {
  LANDMARK_CHECK(begin <= end && end <= pairs_->size());
  if (context.frozen_side.has_value()) {
    LANDMARK_CHECK(context.frozen_values.size() == num_attributes_);
  }
  for (size_t p = begin; p < end; ++p) {
    const PairRecord& pair = (*pairs_)[p];
    PreparedValue* row = values_.data() + p * num_attributes_ * 2;
    for (size_t a = 0; a < num_attributes_; ++a) {
      for (EntitySide side : {EntitySide::kLeft, EntitySide::kRight}) {
        PreparedValue& slot = row[a * 2 + (side == EntitySide::kRight)];
        if (context.frozen_side == side) {
          slot = context.frozen_values[a];
        } else {
          slot = PrepareValue(pair.entity(side).value(a), *cache_);
        }
      }
    }
  }
}

void PreparedPairBatch::PrepareRange(size_t begin, size_t end) {
  PrepareRange(begin, end, LandmarkFeatureContext{});
}

const PreparedValue& PreparedPairBatch::value(size_t pair_index, size_t attr,
                                              EntitySide side) const {
  LANDMARK_CHECK(pair_index < pairs_->size() && attr < num_attributes_);
  const PreparedValue& slot =
      values_[(pair_index * num_attributes_ + attr) * 2 +
              (side == EntitySide::kRight)];
  LANDMARK_CHECK_MSG(slot.value != nullptr, "row not prepared");
  return slot;
}

}  // namespace landmark
