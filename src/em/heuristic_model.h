#ifndef LANDMARK_EM_HEURISTIC_MODEL_H_
#define LANDMARK_EM_HEURISTIC_MODEL_H_

#include <string>
#include <vector>

#include "em/em_model.h"

namespace landmark {

/// \brief Rule-based EM baseline: the match probability is the mean Jaccard
/// similarity of the attribute pairs, optionally weighted per attribute.
///
/// It serves two purposes: (1) a second, non-linear-pipeline black box to
/// demonstrate model-agnosticism of the explainers in tests and examples,
/// and (2) a perfectly transparent model whose true token behaviour is
/// computable in closed form, which lets property tests verify that the
/// explainers attribute weight to the right tokens.
class JaccardEmModel : public EmModel {
 public:
  /// `attribute_weights` must be empty (uniform) or one non-negative weight
  /// per entity-schema attribute with a positive sum.
  explicit JaccardEmModel(std::vector<double> attribute_weights = {});

  double PredictProba(const PairRecord& pair) const override;
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override;
  std::string name() const override { return "jaccard-em"; }
  Result<std::vector<double>> AttributeWeights() const override;

 private:
  std::vector<double> attribute_weights_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_HEURISTIC_MODEL_H_
