#include "em/blocking.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "text/tokenize.h"

namespace landmark {

namespace {

std::set<std::string> EntityTokens(const Record& entity) {
  std::set<std::string> tokens;
  for (size_t a = 0; a < entity.num_attributes(); ++a) {
    if (entity.value(a).is_null()) continue;
    for (auto& t : NormalizedTokens(entity.value(a).text())) {
      tokens.insert(std::move(t));
    }
  }
  return tokens;
}

}  // namespace

Result<std::vector<CandidatePair>> TokenBlocker::Block(
    const std::vector<Record>& left, const std::vector<Record>& right) const {
  if (left.empty() || right.empty()) {
    return Status::InvalidArgument("blocking needs non-empty collections");
  }
  for (const auto& collection : {&left, &right}) {
    for (const Record& e : *collection) {
      if (e.schema() == nullptr || !e.schema()->Equals(*left[0].schema())) {
        return Status::InvalidArgument(
            "all entities must share the same schema");
      }
    }
  }

  // Inverted index over the left collection.
  std::map<std::string, std::vector<size_t>> index;
  for (size_t i = 0; i < left.size(); ++i) {
    for (const auto& token : EntityTokens(left[i])) {
      index[token].push_back(i);
    }
  }

  const double max_df =
      options_.max_token_frequency * static_cast<double>(left.size());
  const double n_left = static_cast<double>(left.size());

  // Probe with right entities, accumulating idf-weighted overlap.
  std::vector<std::vector<CandidatePair>> per_left(left.size());
  for (size_t j = 0; j < right.size(); ++j) {
    std::map<size_t, std::pair<size_t, double>> hits;  // left -> (count, score)
    for (const auto& token : EntityTokens(right[j])) {
      auto it = index.find(token);
      if (it == index.end()) continue;
      const double df = static_cast<double>(it->second.size());
      if (df > max_df && df > 1.0) continue;  // stop word
      const double idf = std::log((1.0 + n_left) / (1.0 + df)) + 1.0;
      for (size_t i : it->second) {
        auto& [count, score] = hits[i];
        ++count;
        score += idf;
      }
    }
    for (const auto& [i, hit] : hits) {
      if (hit.first < options_.min_shared_tokens) continue;
      per_left[i].push_back(CandidatePair{i, j, hit.second});
    }
  }

  std::vector<CandidatePair> out;
  for (auto& candidates : per_left) {
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidatePair& a, const CandidatePair& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.right_index < b.right_index;
              });
    if (options_.top_k_per_left > 0 &&
        candidates.size() > options_.top_k_per_left) {
      candidates.resize(options_.top_k_per_left);
    }
    out.insert(out.end(), candidates.begin(), candidates.end());
  }
  return out;
}

}  // namespace landmark
