#include "em/features.h"

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace landmark {

std::string_view AttributeFeatureKindName(AttributeFeatureKind kind) {
  switch (kind) {
    case AttributeFeatureKind::kJaccard:
      return "jaccard";
    case AttributeFeatureKind::kOverlap:
      return "overlap";
    case AttributeFeatureKind::kCosine:
      return "cosine";
    case AttributeFeatureKind::kMongeElkan:
      return "monge_elkan";
    case AttributeFeatureKind::kLevenshtein:
      return "lev";
    case AttributeFeatureKind::kJaroWinkler:
      return "jaro_winkler";
    case AttributeFeatureKind::kTrigram:
      return "trigram";
    case AttributeFeatureKind::kNumericCloseness:
      return "numeric";
    case AttributeFeatureKind::kBothPresent:
      return "both_present";
  }
  return "unknown";
}

double ComputeAttributeFeature(AttributeFeatureKind kind, const Value& left,
                               const Value& right) {
  if (kind == AttributeFeatureKind::kBothPresent) {
    return (!left.is_null() && !right.is_null()) ? 1.0 : 0.0;
  }
  if (left.is_null() || right.is_null()) return 0.0;

  const std::string& a = left.text();
  const std::string& b = right.text();
  switch (kind) {
    case AttributeFeatureKind::kJaccard:
      return JaccardSimilarity(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kOverlap:
      return OverlapCoefficient(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kCosine:
      return CosineTokenSimilarity(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kMongeElkan:
      return MongeElkanSymmetric(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kLevenshtein:
      return LevenshteinSimilarity(a, b);
    case AttributeFeatureKind::kJaroWinkler:
      return JaroWinklerSimilarity(a, b);
    case AttributeFeatureKind::kTrigram:
      return TrigramSimilarity(a, b);
    case AttributeFeatureKind::kNumericCloseness: {
      auto na = left.AsDouble();
      auto nb = right.AsDouble();
      if (!na.has_value() || !nb.has_value()) return 0.0;
      return NumericSimilarity(*na, *nb);
    }
    case AttributeFeatureKind::kBothPresent:
      break;  // handled above
  }
  LANDMARK_CHECK_MSG(false, "unreachable feature kind");
  return 0.0;
}

std::vector<double> ComputeAllAttributeFeatures(const Value& left,
                                                const Value& right) {
  std::vector<double> out;
  out.reserve(kNumAttributeFeatures);
  for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
    out.push_back(ComputeAttributeFeature(static_cast<AttributeFeatureKind>(k),
                                          left, right));
  }
  return out;
}

}  // namespace landmark
