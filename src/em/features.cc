#include "em/features.h"

#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace landmark {

std::string_view AttributeFeatureKindName(AttributeFeatureKind kind) {
  switch (kind) {
    case AttributeFeatureKind::kJaccard:
      return "jaccard";
    case AttributeFeatureKind::kOverlap:
      return "overlap";
    case AttributeFeatureKind::kCosine:
      return "cosine";
    case AttributeFeatureKind::kMongeElkan:
      return "monge_elkan";
    case AttributeFeatureKind::kLevenshtein:
      return "lev";
    case AttributeFeatureKind::kJaroWinkler:
      return "jaro_winkler";
    case AttributeFeatureKind::kTrigram:
      return "trigram";
    case AttributeFeatureKind::kNumericCloseness:
      return "numeric";
    case AttributeFeatureKind::kBothPresent:
      return "both_present";
  }
  return "unknown";
}

double ComputeAttributeFeature(AttributeFeatureKind kind, const Value& left,
                               const Value& right) {
  if (kind == AttributeFeatureKind::kBothPresent) {
    return (!left.is_null() && !right.is_null()) ? 1.0 : 0.0;
  }
  if (left.is_null() || right.is_null()) return 0.0;

  const std::string& a = left.text();
  const std::string& b = right.text();
  switch (kind) {
    case AttributeFeatureKind::kJaccard:
      return JaccardSimilarity(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kOverlap:
      return OverlapCoefficient(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kCosine:
      return CosineTokenSimilarity(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kMongeElkan:
      return MongeElkanSymmetric(NormalizedTokens(a), NormalizedTokens(b));
    case AttributeFeatureKind::kLevenshtein:
      return LevenshteinSimilarity(a, b);
    case AttributeFeatureKind::kJaroWinkler:
      return JaroWinklerSimilarity(a, b);
    case AttributeFeatureKind::kTrigram:
      return TrigramSimilarity(a, b);
    case AttributeFeatureKind::kNumericCloseness: {
      auto na = left.AsDouble();
      auto nb = right.AsDouble();
      if (!na.has_value() || !nb.has_value()) return 0.0;
      return NumericSimilarity(*na, *nb);
    }
    case AttributeFeatureKind::kBothPresent:
      break;  // handled above
  }
  LANDMARK_CHECK_MSG(false, "unreachable feature kind");
  return 0.0;
}

PreparedValue PrepareValue(const Value& value, TokenCache& cache) {
  PreparedValue out;
  out.value = &value;
  if (!value.is_null()) out.tokens = &cache.Get(value.text());
  return out;
}

double ComputeAttributeFeature(AttributeFeatureKind kind,
                               const PreparedValue& left,
                               const PreparedValue& right) {
  if (kind == AttributeFeatureKind::kBothPresent) {
    return (!left.is_null() && !right.is_null()) ? 1.0 : 0.0;
  }
  if (left.is_null() || right.is_null()) return 0.0;

  switch (kind) {
    case AttributeFeatureKind::kJaccard:
      return JaccardSimilarity(*left.tokens, *right.tokens);
    case AttributeFeatureKind::kOverlap:
      return OverlapCoefficient(*left.tokens, *right.tokens);
    case AttributeFeatureKind::kCosine:
      return CosineTokenSimilarity(*left.tokens, *right.tokens);
    case AttributeFeatureKind::kMongeElkan:
      return MongeElkanSymmetric(*left.tokens, *right.tokens);
    case AttributeFeatureKind::kLevenshtein:
      return LevenshteinSimilarity(left.value->text(), right.value->text());
    case AttributeFeatureKind::kJaroWinkler:
      return JaroWinklerSimilarity(left.value->text(), right.value->text());
    case AttributeFeatureKind::kTrigram:
      return TrigramSimilarity(*left.tokens, *right.tokens);
    case AttributeFeatureKind::kNumericCloseness: {
      auto na = left.value->AsDouble();
      auto nb = right.value->AsDouble();
      if (!na.has_value() || !nb.has_value()) return 0.0;
      return NumericSimilarity(*na, *nb);
    }
    case AttributeFeatureKind::kBothPresent:
      break;  // handled above
  }
  LANDMARK_CHECK_MSG(false, "unreachable feature kind");
  return 0.0;
}

void ComputeAllAttributeFeatures(const PreparedValue& left,
                                 const PreparedValue& right, double* out) {
  for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
    out[k] = ComputeAttributeFeature(static_cast<AttributeFeatureKind>(k),
                                     left, right);
  }
}

void ComputeAllAttributeFeatures(const Value& left, const Value& right,
                                 double* out) {
  // Profile each side once on the stack and share it across all nine kinds,
  // instead of re-tokenizing per kind like the single-kind entry point.
  TokenizedValue left_tokens, right_tokens;
  PreparedValue pl, pr;
  pl.value = &left;
  pr.value = &right;
  if (!left.is_null()) {
    left_tokens = TokenizedValue::Of(left.text());
    pl.tokens = &left_tokens;
  }
  if (!right.is_null()) {
    right_tokens = TokenizedValue::Of(right.text());
    pr.tokens = &right_tokens;
  }
  ComputeAllAttributeFeatures(pl, pr, out);
}

std::vector<double> ComputeAllAttributeFeatures(const Value& left,
                                                const Value& right) {
  std::vector<double> out(kNumAttributeFeatures);
  ComputeAllAttributeFeatures(left, right, out.data());
  return out;
}

}  // namespace landmark
