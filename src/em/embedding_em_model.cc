#include "em/embedding_em_model.h"

#include <cmath>

#include "text/tokenize.h"
#include "util/check.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

namespace {

uint64_t HashToken(const std::string& token, uint64_t seed) {
  // FNV-1a, mixed with the model's hash seed.
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Vector EmbeddingEmModel::EmbedToken(const std::string& token) const {
  Rng rng(HashToken(token, options_.hash_seed));
  Vector v(options_.embedding_dim);
  double norm_sq = 0.0;
  for (double& x : v) {
    x = rng.NextGaussian();
    norm_sq += x * x;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (double& x : v) x *= inv;
  }
  return v;
}

Vector EmbeddingEmModel::EmbedTokens(
    const std::vector<std::string>& tokens) const {
  Vector v(options_.embedding_dim, 0.0);
  if (tokens.empty()) return v;
  for (const auto& token : tokens) {
    Vector e = EmbedToken(token);
    for (size_t i = 0; i < v.size(); ++i) v[i] += e[i];
  }
  const double inv = 1.0 / static_cast<double>(tokens.size());
  for (double& x : v) x *= inv;
  return v;
}

Vector EmbeddingEmModel::EmbedValue(const Value& value) const {
  if (value.is_null()) return Vector(options_.embedding_dim, 0.0);
  return EmbedTokens(NormalizedTokens(value.text()));
}

Vector EmbeddingEmModel::Compose(const PairRecord& pair) const {
  LANDMARK_CHECK(pair.left.schema()->Equals(*schema_));
  const size_t k = options_.embedding_dim;
  Vector features;
  features.reserve(schema_->num_attributes() * 2 * k);
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    Vector l = EmbedValue(pair.left.value(a));
    Vector r = EmbedValue(pair.right.value(a));
    for (size_t i = 0; i < k; ++i) features.push_back(std::abs(l[i] - r[i]));
    for (size_t i = 0; i < k; ++i) features.push_back(l[i] * r[i]);
  }
  return features;
}

Result<std::unique_ptr<EmbeddingEmModel>> EmbeddingEmModel::Train(
    const EmDataset& dataset, const EmbeddingEmModelOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  if (options.embedding_dim == 0) {
    return Status::InvalidArgument("embedding_dim must be > 0");
  }
  auto model = std::unique_ptr<EmbeddingEmModel>(
      new EmbeddingEmModel(dataset.entity_schema(), options));

  Rng rng(options.split_seed);
  LANDMARK_ASSIGN_OR_RETURN(
      EmDatasetSplit split,
      dataset.Split(options.valid_fraction, options.test_fraction, rng));

  Matrix x_train(split.train.size(),
                 dataset.entity_schema()->num_attributes() * 2 *
                     options.embedding_dim);
  std::vector<int> y_train;
  y_train.reserve(split.train.size());
  for (size_t r = 0; r < split.train.size(); ++r) {
    Vector features = model->Compose(dataset.pair(split.train[r]));
    std::copy(features.begin(), features.end(), x_train.row(r));
    y_train.push_back(dataset.pair(split.train[r]).is_match() ? 1 : 0);
  }

  LANDMARK_RETURN_NOT_OK(model->mlp_.Fit(x_train, y_train, options.mlp));

  std::vector<int> y_test, y_pred;
  for (size_t i : split.test) {
    y_test.push_back(dataset.pair(i).is_match() ? 1 : 0);
    y_pred.push_back(model->PredictProba(dataset.pair(i)) >= 0.5 ? 1 : 0);
  }
  if (!y_test.empty()) {
    model->report_.confusion = ComputeConfusion(y_test, y_pred);
    model->report_.f1 = model->report_.confusion.F1();
    model->report_.precision = model->report_.confusion.Precision();
    model->report_.recall = model->report_.confusion.Recall();
    model->report_.accuracy = model->report_.confusion.Accuracy();
  }
  return model;
}

Vector EmbeddingEmModel::ComposePrepared(const PreparedPairBatch& prepared,
                                         size_t pair_index) const {
  const size_t k = options_.embedding_dim;
  Vector features;
  features.reserve(schema_->num_attributes() * 2 * k);
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const PreparedValue& pl =
        prepared.value(pair_index, a, EntitySide::kLeft);
    const PreparedValue& pr =
        prepared.value(pair_index, a, EntitySide::kRight);
    Vector l = pl.is_null() ? Vector(k, 0.0) : EmbedTokens(pl.tokens->tokens);
    Vector r = pr.is_null() ? Vector(k, 0.0) : EmbedTokens(pr.tokens->tokens);
    for (size_t i = 0; i < k; ++i) features.push_back(std::abs(l[i] - r[i]));
    for (size_t i = 0; i < k; ++i) features.push_back(l[i] * r[i]);
  }
  return features;
}

double EmbeddingEmModel::PredictProba(const PairRecord& pair) const {
  return mlp_.PredictProba(Compose(pair));
}

void EmbeddingEmModel::PredictProbaPrepared(const PreparedPairBatch& prepared,
                                            size_t begin, size_t end,
                                            double* out) const {
  if (begin == end) return;
  LANDMARK_TRACE_SPAN("model/query");
  LANDMARK_ACTIVITY("model/query");
  Timer timer;
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = mlp_.PredictProba(ComposePrepared(prepared, i));
  }
  ReportQueryTelemetry(end - begin, timer.ElapsedSeconds());
}

}  // namespace landmark
