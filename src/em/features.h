#ifndef LANDMARK_EM_FEATURES_H_
#define LANDMARK_EM_FEATURES_H_

#include <string>
#include <vector>

#include "data/value.h"

namespace landmark {

/// \brief The per-attribute similarity features used by the Magellan-style
/// EM feature extractor.
///
/// For every attribute of the entity schema, the extractor compares the left
/// and the right value and emits one score per feature kind. This mirrors
/// the feature tables py_entitymatching builds for string attributes, which
/// is the setting the paper's Logistic Regression EM model is trained in.
enum class AttributeFeatureKind : int {
  kJaccard = 0,        // Jaccard over word tokens
  kOverlap,            // overlap coefficient over word tokens
  kCosine,             // cosine over token frequency vectors
  kMongeElkan,         // symmetric Monge-Elkan with Jaro-Winkler base
  kLevenshtein,        // whole-string edit similarity
  kJaroWinkler,        // whole-string Jaro-Winkler
  kTrigram,            // Jaccard over character 3-grams
  kNumericCloseness,   // relative closeness when both parse as numbers
  kBothPresent,        // 1 when neither side is null
};

/// Number of feature kinds emitted per attribute.
constexpr size_t kNumAttributeFeatures = 9;

/// Returns a short name for a feature kind ("jaccard", "overlap", ...).
std::string_view AttributeFeatureKindName(AttributeFeatureKind kind);

/// Computes one similarity feature between two attribute values.
/// Null handling: kBothPresent reports presence; every other feature is 0
/// when either side is null (a missing value carries no similarity signal).
double ComputeAttributeFeature(AttributeFeatureKind kind, const Value& left,
                               const Value& right);

/// Computes all kNumAttributeFeatures features for one attribute pair, in
/// enum order.
std::vector<double> ComputeAllAttributeFeatures(const Value& left,
                                                const Value& right);

}  // namespace landmark

#endif  // LANDMARK_EM_FEATURES_H_
