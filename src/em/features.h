#ifndef LANDMARK_EM_FEATURES_H_
#define LANDMARK_EM_FEATURES_H_

#include <string>
#include <vector>

#include "data/value.h"
#include "text/token_cache.h"

namespace landmark {

/// \brief The per-attribute similarity features used by the Magellan-style
/// EM feature extractor.
///
/// For every attribute of the entity schema, the extractor compares the left
/// and the right value and emits one score per feature kind. This mirrors
/// the feature tables py_entitymatching builds for string attributes, which
/// is the setting the paper's Logistic Regression EM model is trained in.
enum class AttributeFeatureKind : int {
  kJaccard = 0,        // Jaccard over word tokens
  kOverlap,            // overlap coefficient over word tokens
  kCosine,             // cosine over token frequency vectors
  kMongeElkan,         // symmetric Monge-Elkan with Jaro-Winkler base
  kLevenshtein,        // whole-string edit similarity
  kJaroWinkler,        // whole-string Jaro-Winkler
  kTrigram,            // Jaccard over character 3-grams
  kNumericCloseness,   // relative closeness when both parse as numbers
  kBothPresent,        // 1 when neither side is null
};

/// Number of feature kinds emitted per attribute.
constexpr size_t kNumAttributeFeatures = 9;

/// Returns a short name for a feature kind ("jaccard", "overlap", ...).
std::string_view AttributeFeatureKindName(AttributeFeatureKind kind);

/// Computes one similarity feature between two attribute values.
/// Null handling: kBothPresent reports presence; every other feature is 0
/// when either side is null (a missing value carries no similarity signal).
double ComputeAttributeFeature(AttributeFeatureKind kind, const Value& left,
                               const Value& right);

/// \brief One attribute value with its token profile resolved, ready for
/// allocation-light feature computation.
///
/// `value` is never nullptr once prepared; `tokens` is nullptr exactly when
/// the value is null (a null value carries no token profile, mirroring the
/// null short-circuit of ComputeAttributeFeature). Both pointers borrow:
/// the Value must outlive the PreparedValue, the profile must outlive it
/// too (it lives in a TokenCache or on the preparer's stack).
struct PreparedValue {
  const Value* value = nullptr;
  const TokenizedValue* tokens = nullptr;

  bool is_null() const { return value == nullptr || value->is_null(); }
};

/// Resolves `value` against the batch token cache (null values get no
/// profile and never touch the cache — "" and null must stay distinct).
PreparedValue PrepareValue(const Value& value, TokenCache& cache);

/// Prepared-path feature kernel; bit-identical to the Value overload for
/// every kind (the token-set kinds consume the precomputed profile views
/// instead of re-tokenizing, the whole-string kinds read value->text()).
double ComputeAttributeFeature(AttributeFeatureKind kind,
                               const PreparedValue& left,
                               const PreparedValue& right);

/// Computes all kNumAttributeFeatures features for one attribute pair, in
/// enum order.
std::vector<double> ComputeAllAttributeFeatures(const Value& left,
                                                const Value& right);

/// Same, writing into out[0, kNumAttributeFeatures). Tokenizes each side
/// once and shares the profiles across all token-set kinds, instead of
/// re-tokenizing both sides per kind.
void ComputeAllAttributeFeatures(const Value& left, const Value& right,
                                 double* out);

/// Prepared-path variant over already-resolved profiles (the engine's
/// query fast path); writes into out[0, kNumAttributeFeatures).
void ComputeAllAttributeFeatures(const PreparedValue& left,
                                 const PreparedValue& right, double* out);

}  // namespace landmark

#endif  // LANDMARK_EM_FEATURES_H_
