#include "em/forest_em_model.h"

#include "util/arena.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

Result<std::unique_ptr<ForestEmModel>> ForestEmModel::Train(
    const EmDataset& dataset, const ForestEmModelOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  auto model = std::unique_ptr<ForestEmModel>(
      new ForestEmModel(dataset.entity_schema()));

  Rng rng(options.split_seed);
  LANDMARK_ASSIGN_OR_RETURN(
      EmDatasetSplit split,
      dataset.Split(options.valid_fraction, options.test_fraction, rng));

  Matrix x_train = model->extractor_->ExtractBatch(dataset, split.train);
  std::vector<int> y_train;
  y_train.reserve(split.train.size());
  size_t n_pos = 0;
  for (size_t i : split.train) {
    const int label = dataset.pair(i).is_match() ? 1 : 0;
    y_train.push_back(label);
    n_pos += static_cast<size_t>(label);
  }
  if (n_pos == 0 || n_pos == y_train.size()) {
    return Status::InvalidArgument("training split has a single class");
  }

  std::vector<double> sample_weight;
  if (options.balanced_class_weights) {
    const double n_total = static_cast<double>(y_train.size());
    const double w_pos = n_total / (2.0 * static_cast<double>(n_pos));
    const double w_neg =
        n_total / (2.0 * static_cast<double>(y_train.size() - n_pos));
    sample_weight.reserve(y_train.size());
    for (int label : y_train) {
      sample_weight.push_back(label == 1 ? w_pos : w_neg);
    }
  }
  LANDMARK_RETURN_NOT_OK(model->forest_.Fit(x_train, y_train, options.forest,
                                            sample_weight));

  std::vector<int> y_test, y_pred;
  for (size_t i : split.test) {
    y_test.push_back(dataset.pair(i).is_match() ? 1 : 0);
    y_pred.push_back(model->PredictProba(dataset.pair(i)) >= 0.5 ? 1 : 0);
  }
  if (!y_test.empty()) {
    model->report_.confusion = ComputeConfusion(y_test, y_pred);
    model->report_.f1 = model->report_.confusion.F1();
    model->report_.precision = model->report_.confusion.Precision();
    model->report_.recall = model->report_.confusion.Recall();
    model->report_.accuracy = model->report_.confusion.Accuracy();
  }
  return model;
}

double ForestEmModel::PredictProba(const PairRecord& pair) const {
  return forest_.PredictProba(extractor_->Extract(pair));
}

void ForestEmModel::PredictProbaPrepared(const PreparedPairBatch& prepared,
                                         size_t begin, size_t end,
                                         double* out) const {
  if (begin == end) return;
  LANDMARK_TRACE_SPAN("model/query");
  LANDMARK_ACTIVITY("model/query");
  Timer timer;
  ArenaFrame frame;
  const size_t width = extractor_->num_features();
  double* features = frame.arena().AllocateDoubles(width);
  for (size_t i = begin; i < end; ++i) {
    extractor_->ExtractPrepared(prepared, i, features);
    out[i - begin] = forest_.PredictProba(features, width);
  }
  ReportQueryTelemetry(end - begin, timer.ElapsedSeconds());
}

Result<std::vector<double>> ForestEmModel::AttributeWeights() const {
  if (!forest_.is_fitted()) {
    return Status::FailedPrecondition("model is not trained");
  }
  std::vector<double> feature_importances = forest_.FeatureImportances();
  const size_t num_attrs = extractor_->entity_schema()->num_attributes();
  std::vector<double> weights(num_attrs, 0.0);
  for (size_t f = 0; f < feature_importances.size(); ++f) {
    weights[extractor_->attribute_of_feature(f)] += feature_importances[f];
  }
  return weights;
}

}  // namespace landmark
