#include "em/em_model.h"

#include "util/check.h"

namespace landmark {

std::vector<double> EmModel::PredictProbaBatch(
    const std::vector<PairRecord>& pairs) const {
  std::vector<double> out(pairs.size());
  PredictProbaRange(pairs, 0, pairs.size(), out.data());
  return out;
}

void EmModel::PredictProbaRange(const std::vector<PairRecord>& pairs,
                                size_t begin, size_t end, double* out) const {
  LANDMARK_CHECK(begin <= end && end <= pairs.size());
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = PredictProba(pairs[i]);
  }
}

}  // namespace landmark
