#include "em/em_model.h"

#include "util/check.h"
#include "util/telemetry/flight_deck.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

std::vector<double> EmModel::PredictProbaBatch(
    const std::vector<PairRecord>& pairs) const {
  std::vector<double> out(pairs.size());
  PredictProbaRange(pairs, 0, pairs.size(), out.data());
  return out;
}

void EmModel::PredictProbaRange(const std::vector<PairRecord>& pairs,
                                size_t begin, size_t end, double* out) const {
  LANDMARK_CHECK(begin <= end && end <= pairs.size());
  if (begin == end) return;
  LANDMARK_TRACE_SPAN("model/query");
  LANDMARK_ACTIVITY("model/query");
  Timer timer;
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = PredictProba(pairs[i]);
  }
  ReportQueryTelemetry(end - begin, timer.ElapsedSeconds());
}

void EmModel::PredictProbaPrepared(const PreparedPairBatch& prepared,
                                   size_t begin, size_t end,
                                   double* out) const {
  // Fallback for models without a prepared path: score from the raw pairs.
  PredictProbaRange(prepared.pairs(), begin, end, out);
}

void EmModel::ReportQueryTelemetry(size_t num_pairs, double seconds) const {
  if (num_pairs == 0) return;
  // Per-type visibility into the dominant pipeline cost. One registry
  // round-trip per *range call* (the engine shards a whole batch into at
  // most num_threads ranges), never per pair.
  const double per_pair = seconds / static_cast<double>(num_pairs);
  const std::string model_name = name();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("model/queries").Add(num_pairs);
  registry.GetCounter("model/queries/" + model_name).Add(num_pairs);
  registry.GetHistogram("model/query_latency").Record(per_pair);
  registry.GetHistogram("model/query_latency/" + model_name).Record(per_pair);
  registry.GetHistogram("model/query_batch_seconds").Record(seconds);
}

}  // namespace landmark
