#include "em/em_model.h"

namespace landmark {

std::vector<double> EmModel::PredictProbaBatch(
    const std::vector<PairRecord>& pairs) const {
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& pair : pairs) out.push_back(PredictProba(pair));
  return out;
}

}  // namespace landmark
