#ifndef LANDMARK_EM_PREPARED_BATCH_H_
#define LANDMARK_EM_PREPARED_BATCH_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "data/pair_record.h"
#include "em/features.h"
#include "text/token_cache.h"

namespace landmark {

/// \brief Frozen-side precomputation for one explanation unit.
///
/// Landmark-style units hold one entity fixed across every perturbation
/// mask, so the fixed side's token profiles are identical for all rows of
/// the unit. The context resolves them once; PreparedPairBatch::PrepareRange
/// then shares them across the unit's rows instead of re-resolving per row.
///
/// The context borrows: the source PairRecord and the TokenCache it was
/// built from must outlive it. An empty context (no `frozen_side`) is valid
/// and disables sharing — every row resolves both sides through the cache.
struct LandmarkFeatureContext {
  /// The side frozen across the unit's masks, if any.
  std::optional<EntitySide> frozen_side;
  /// PreparedValue per attribute of the frozen entity; empty when
  /// `frozen_side` is unset.
  std::vector<PreparedValue> frozen_values;
};

/// Builds the context for a unit whose rows all share `pair`'s
/// `frozen_side` entity. Callers must only pass a side that
/// PairExplainer::FrozenSide reports — i.e. one ReconstructUnit never
/// varies; nullopt is always safe and yields an empty context.
LandmarkFeatureContext MakeLandmarkFeatureContext(
    const PairRecord& pair, std::optional<EntitySide> frozen_side,
    TokenCache& cache);

/// \brief A query batch with every attribute value resolved to a
/// PreparedValue, so feature extraction runs without tokenizing.
///
/// The batch borrows `pairs` and `cache`; both must outlive it, and `pairs`
/// must not reallocate after construction (PreparedValues point into its
/// records). Preparation mutates the token cache, which is internally
/// sharded and safe for concurrent callers — distinct PreparedPairBatch
/// instances may prepare against one shared cache from different threads
/// (the task-graph scheduler does exactly that, one batch per unit), but a
/// single instance must still be prepared by one thread before its readers
/// start; afterwards the batch is immutable and safe to read from any
/// number of query workers concurrently.
class PreparedPairBatch {
 public:
  PreparedPairBatch(const std::vector<PairRecord>& pairs, TokenCache* cache);

  /// Resolves rows [begin, end). Frozen-side slots are copied from
  /// `context` when it names a side; the varying side always resolves
  /// through the cache. Rows may be prepared in any order but each row
  /// exactly once.
  void PrepareRange(size_t begin, size_t end,
                    const LandmarkFeatureContext& context);

  /// Resolves rows [begin, end) with no frozen side.
  void PrepareRange(size_t begin, size_t end);

  const std::vector<PairRecord>& pairs() const { return *pairs_; }
  size_t size() const { return pairs_->size(); }
  size_t num_attributes() const { return num_attributes_; }

  /// The resolved value of `pairs()[pair_index]`'s attribute `attr` on
  /// `side`, assembled from the SoA columns. The row must have been
  /// prepared.
  PreparedValue value(size_t pair_index, size_t attr, EntitySide side) const;

 private:
  size_t SlotIndex(size_t pair_index, size_t attr, EntitySide side) const {
    return (pair_index * num_attributes_ + attr) * 2 +
           (side == EntitySide::kRight);
  }

  const std::vector<PairRecord>* pairs_;
  TokenCache* cache_;
  size_t num_attributes_ = 0;
  /// Structure-of-arrays profile columns, both indexed
  /// [pair][attr][side] (side kLeft then kRight). The query stage streams
  /// the token-profile column almost exclusively (eight of nine feature
  /// kinds read only the tokens), so splitting the PreparedValue fields
  /// into parallel arrays halves the stride of that walk.
  std::vector<const Value*> value_ptrs_;
  std::vector<const TokenizedValue*> token_ptrs_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_PREPARED_BATCH_H_
