#ifndef LANDMARK_EM_FEATURE_EXTRACTOR_H_
#define LANDMARK_EM_FEATURE_EXTRACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "data/em_dataset.h"
#include "data/pair_record.h"
#include "data/schema.h"
#include "em/features.h"
#include "em/prepared_batch.h"
#include "ml/linalg.h"
#include "util/result.h"

namespace landmark {

/// \brief Maps a PairRecord to a dense feature vector: for every attribute
/// of the entity schema, kNumAttributeFeatures similarity scores between the
/// left and right value.
///
/// Feature order: attribute-major, i.e. all features of attribute 0, then
/// attribute 1, ... This layout lets the EM model aggregate per-attribute
/// weights (needed by the paper's attribute-based evaluation).
class FeatureExtractor {
 public:
  explicit FeatureExtractor(std::shared_ptr<const Schema> entity_schema);

  const std::shared_ptr<const Schema>& entity_schema() const {
    return schema_;
  }

  size_t num_features() const {
    return schema_->num_attributes() * kNumAttributeFeatures;
  }

  /// "<attr>_<feature>" for feature index `i`.
  const std::string& feature_name(size_t i) const { return names_.at(i); }
  const std::vector<std::string>& feature_names() const { return names_; }

  /// Index of the attribute that feature `i` derives from.
  size_t attribute_of_feature(size_t i) const {
    return i / kNumAttributeFeatures;
  }

  /// Extracts the feature vector for one pair.
  Vector Extract(const PairRecord& pair) const;

  /// Extracts one pair into out[0, num_features()), tokenizing each value
  /// once (no per-row Vector allocation).
  void ExtractInto(const PairRecord& pair, double* out) const;

  /// Prepared fast path: extracts pair `pair_index` of `prepared` into
  /// out[0, num_features()) from its resolved token profiles, without
  /// tokenizing. Bit-identical to ExtractInto on the same pair.
  void ExtractPrepared(const PreparedPairBatch& prepared, size_t pair_index,
                       double* out) const;

  /// Extracts a design matrix for the given pair indices of `dataset`.
  Matrix ExtractBatch(const EmDataset& dataset,
                      const std::vector<size_t>& indices) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::string> names_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_FEATURE_EXTRACTOR_H_
