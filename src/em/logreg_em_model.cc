#include "em/logreg_em_model.h"

#include <cmath>

#include "util/arena.h"

#include "util/telemetry/flight_deck.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

Result<std::unique_ptr<LogRegEmModel>> LogRegEmModel::Train(
    const EmDataset& dataset, const LogRegEmModelOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot train on an empty dataset");
  }
  auto model = std::unique_ptr<LogRegEmModel>(
      new LogRegEmModel(dataset.entity_schema()));

  Rng rng(options.split_seed);
  LANDMARK_ASSIGN_OR_RETURN(
      EmDatasetSplit split,
      dataset.Split(options.valid_fraction, options.test_fraction, rng));

  Matrix x_train =
      model->extractor_->ExtractBatch(dataset, split.train);
  std::vector<int> y_train;
  y_train.reserve(split.train.size());
  for (size_t i : split.train) {
    y_train.push_back(dataset.pair(i).is_match() ? 1 : 0);
  }

  LANDMARK_RETURN_NOT_OK(model->scaler_.Fit(x_train));
  LANDMARK_RETURN_NOT_OK(model->scaler_.TransformInPlace(x_train));
  LANDMARK_RETURN_NOT_OK(
      model->classifier_.Fit(x_train, y_train, options.logreg));

  // Held-out report.
  std::vector<int> y_test, y_pred;
  y_test.reserve(split.test.size());
  y_pred.reserve(split.test.size());
  for (size_t i : split.test) {
    y_test.push_back(dataset.pair(i).is_match() ? 1 : 0);
    y_pred.push_back(
        model->PredictProba(dataset.pair(i)) >= 0.5 ? 1 : 0);
  }
  if (!y_test.empty()) {
    model->report_.confusion = ComputeConfusion(y_test, y_pred);
    model->report_.f1 = model->report_.confusion.F1();
    model->report_.precision = model->report_.confusion.Precision();
    model->report_.recall = model->report_.confusion.Recall();
    model->report_.accuracy = model->report_.confusion.Accuracy();
  }
  return model;
}

double LogRegEmModel::PredictProba(const PairRecord& pair) const {
  Vector features = extractor_->Extract(pair);
  Status st = scaler_.TransformInPlace(features);
  LANDMARK_CHECK_MSG(st.ok(), st.ToString().c_str());
  return classifier_.PredictProba(features);
}

void LogRegEmModel::PredictProbaPrepared(const PreparedPairBatch& prepared,
                                         size_t begin, size_t end,
                                         double* out) const {
  if (begin == end) return;
  LANDMARK_TRACE_SPAN("model/query");
  LANDMARK_ACTIVITY("model/query");
  Timer timer;
  // Arena-backed scratch row: no heap traffic per range call (the engine
  // issues one of these per unit).
  ArenaFrame frame;
  const size_t width = extractor_->num_features();
  double* features = frame.arena().AllocateDoubles(width);
  for (size_t i = begin; i < end; ++i) {
    extractor_->ExtractPrepared(prepared, i, features);
    Status st = scaler_.TransformInPlace(features, width);
    LANDMARK_CHECK_MSG(st.ok(), st.ToString().c_str());
    out[i - begin] = classifier_.PredictProba(features, width);
  }
  ReportQueryTelemetry(end - begin, timer.ElapsedSeconds());
}

Result<std::vector<double>> LogRegEmModel::AttributeWeights() const {
  if (!classifier_.is_fitted()) {
    return Status::FailedPrecondition("model is not trained");
  }
  const size_t num_attrs = extractor_->entity_schema()->num_attributes();
  std::vector<double> weights(num_attrs, 0.0);
  const Vector& coef = classifier_.coefficients();
  for (size_t f = 0; f < coef.size(); ++f) {
    weights[extractor_->attribute_of_feature(f)] += std::abs(coef[f]);
  }
  return weights;
}

}  // namespace landmark
