#ifndef LANDMARK_EM_FOREST_EM_MODEL_H_
#define LANDMARK_EM_FOREST_EM_MODEL_H_

#include <memory>
#include <string>

#include "data/em_dataset.h"
#include "em/em_model.h"
#include "em/feature_extractor.h"
#include "em/logreg_em_model.h"
#include "ml/decision_tree.h"

namespace landmark {

/// \brief Training configuration for the random-forest EM model.
struct ForestEmModelOptions {
  RandomForestOptions forest;
  double valid_fraction = 0.2;
  double test_fraction = 0.2;
  uint64_t split_seed = 17;
  /// Rebalance classes through per-sample weights (the benchmark is 9-24%
  /// matches).
  bool balanced_class_weights = true;
};

/// \brief A *nonlinear* EM model: random forest over the same Magellan-style
/// similarity features as LogRegEmModel.
///
/// The explainers treat it as a black box, which demonstrates the
/// model-agnosticism claim of the paper (§3: "other explanation systems can
/// be easily coupled"; the framework only needs PredictProba). Its
/// AttributeWeights come from impurity-decrease feature importances, so the
/// attribute-based evaluation also applies.
class ForestEmModel : public EmModel {
 public:
  static Result<std::unique_ptr<ForestEmModel>> Train(
      const EmDataset& dataset, const ForestEmModelOptions& options = {});

  double PredictProba(const PairRecord& pair) const override;
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override;
  std::string name() const override { return "forest-em"; }
  Result<std::vector<double>> AttributeWeights() const override;

  const EmModelReport& report() const { return report_; }
  const RandomForest& forest() const { return forest_; }

 private:
  explicit ForestEmModel(std::shared_ptr<const Schema> schema)
      : extractor_(std::make_unique<FeatureExtractor>(std::move(schema))) {}

  std::unique_ptr<FeatureExtractor> extractor_;
  RandomForest forest_;
  EmModelReport report_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_FOREST_EM_MODEL_H_
