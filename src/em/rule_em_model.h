#ifndef LANDMARK_EM_RULE_EM_MODEL_H_
#define LANDMARK_EM_RULE_EM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/em_dataset.h"
#include "em/em_model.h"
#include "em/feature_extractor.h"
#include "em/logreg_em_model.h"

namespace landmark {

/// \brief One conjunctive matching rule over similarity predicates:
/// "jaccard(name) >= 0.7 AND numeric(price) >= 0.9 => match".
struct MatchRule {
  struct Predicate {
    size_t feature = 0;     // index into the FeatureExtractor space
    double threshold = 0.0;  // fires when feature value >= threshold
  };
  std::vector<Predicate> predicates;
  /// Training precision of the rule (used as its confidence).
  double confidence = 0.0;
  /// Positives covered at learning time (diagnostic).
  size_t support = 0;

  bool Fires(const Vector& features) const;
  /// Pointer form for arena-backed rows.
  bool Fires(const double* features) const;
  std::string ToString(const FeatureExtractor& extractor) const;
};

/// \brief Options for the sequential-covering rule learner.
struct RuleEmModelOptions {
  /// Candidate similarity thresholds per feature.
  std::vector<double> thresholds = {0.5, 0.7, 0.85, 0.95};
  size_t max_rules = 10;
  size_t max_predicates_per_rule = 3;
  /// A rule must cover at least this many remaining positives.
  size_t min_support = 3;
  /// Stop growing a rule once its precision reaches this value.
  double target_precision = 0.95;
  /// Probability reported when no rule fires.
  double default_probability = 0.02;
  double valid_fraction = 0.2;
  double test_fraction = 0.2;
  uint64_t split_seed = 17;
};

/// \brief Rule-based EM (the intrinsically interpretable family of the
/// paper's related work — cf. Singh et al. 2017, Wang et al. 2011), learned
/// by sequential covering over the Magellan-style similarity features.
///
/// PredictProba returns the confidence of the strongest firing rule (the
/// learner's training precision), or `default_probability` when no rule
/// fires. Because the true decision logic is a known finite rule list, this
/// model doubles as ground truth for validating the explainers: a faithful
/// explanation of a RuleEmModel decision must place its weight on the
/// attributes of the firing rule.
class RuleEmModel : public EmModel {
 public:
  static Result<std::unique_ptr<RuleEmModel>> Train(
      const EmDataset& dataset, const RuleEmModelOptions& options = {});

  double PredictProba(const PairRecord& pair) const override;
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override;
  std::string name() const override { return "rule-em"; }
  Result<std::vector<double>> AttributeWeights() const override;

  const std::vector<MatchRule>& rules() const { return rules_; }
  const EmModelReport& report() const { return report_; }
  const FeatureExtractor& feature_extractor() const { return *extractor_; }

  /// Multi-line rendering of the learned rule list.
  std::string RulesToString() const;

 private:
  RuleEmModel(std::shared_ptr<const Schema> schema,
              const RuleEmModelOptions& options)
      : extractor_(std::make_unique<FeatureExtractor>(std::move(schema))),
        options_(options) {}

  std::unique_ptr<FeatureExtractor> extractor_;
  RuleEmModelOptions options_;
  std::vector<MatchRule> rules_;
  EmModelReport report_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_RULE_EM_MODEL_H_
