#ifndef LANDMARK_EM_LOGREG_EM_MODEL_H_
#define LANDMARK_EM_LOGREG_EM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/em_dataset.h"
#include "em/em_model.h"
#include "em/feature_extractor.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// \brief Training configuration for the logistic-regression EM model.
struct LogRegEmModelOptions {
  LogisticRegressionOptions logreg;
  double valid_fraction = 0.2;
  double test_fraction = 0.2;
  uint64_t split_seed = 17;
};

/// \brief Quality of a trained EM model on its held-out test split.
struct EmModelReport {
  ConfusionMatrix confusion;
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double accuracy = 0.0;
};

/// \brief The EM model the paper explains: Logistic Regression over
/// Magellan-style per-attribute similarity features.
///
/// The pipeline is FeatureExtractor -> StandardScaler -> LogisticRegression.
/// AttributeWeights() exposes the per-attribute importance the paper's
/// attribute-based evaluation ranks against the surrogate: the sum of the
/// absolute standardized coefficients of the attribute's features.
class LogRegEmModel : public EmModel {
 public:
  /// Trains on a stratified split of `dataset`; evaluates on the test part.
  static Result<std::unique_ptr<LogRegEmModel>> Train(
      const EmDataset& dataset, const LogRegEmModelOptions& options = {});

  double PredictProba(const PairRecord& pair) const override;
  void PredictProbaPrepared(const PreparedPairBatch& prepared, size_t begin,
                            size_t end, double* out) const override;
  std::string name() const override { return "logreg-em"; }
  Result<std::vector<double>> AttributeWeights() const override;

  /// Test-split quality report recorded at training time.
  const EmModelReport& report() const { return report_; }

  const FeatureExtractor& feature_extractor() const { return *extractor_; }
  const LogisticRegression& classifier() const { return classifier_; }

 private:
  explicit LogRegEmModel(std::shared_ptr<const Schema> schema)
      : extractor_(std::make_unique<FeatureExtractor>(std::move(schema))) {}

  std::unique_ptr<FeatureExtractor> extractor_;
  StandardScaler scaler_;
  LogisticRegression classifier_;
  EmModelReport report_;
};

}  // namespace landmark

#endif  // LANDMARK_EM_LOGREG_EM_MODEL_H_
