#include "em/feature_extractor.h"

#include "util/check.h"

namespace landmark {

FeatureExtractor::FeatureExtractor(std::shared_ptr<const Schema> entity_schema)
    : schema_(std::move(entity_schema)) {
  LANDMARK_CHECK(schema_ != nullptr);
  names_.reserve(num_features());
  for (const auto& attr : schema_->attribute_names()) {
    for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
      names_.push_back(
          attr + "_" +
          std::string(AttributeFeatureKindName(
              static_cast<AttributeFeatureKind>(k))));
    }
  }
}

Vector FeatureExtractor::Extract(const PairRecord& pair) const {
  Vector features(num_features());
  ExtractInto(pair, features.data());
  return features;
}

void FeatureExtractor::ExtractInto(const PairRecord& pair, double* out) const {
  LANDMARK_CHECK(pair.left.schema() != nullptr &&
                 pair.left.schema()->Equals(*schema_));
  LANDMARK_CHECK(pair.right.schema() != nullptr &&
                 pair.right.schema()->Equals(*schema_));
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    ComputeAllAttributeFeatures(pair.left.value(a), pair.right.value(a),
                                out + a * kNumAttributeFeatures);
  }
}

void FeatureExtractor::ExtractPrepared(const PreparedPairBatch& prepared,
                                       size_t pair_index, double* out) const {
  LANDMARK_CHECK(prepared.num_attributes() == schema_->num_attributes());
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    ComputeAllAttributeFeatures(
        prepared.value(pair_index, a, EntitySide::kLeft),
        prepared.value(pair_index, a, EntitySide::kRight),
        out + a * kNumAttributeFeatures);
  }
}

Matrix FeatureExtractor::ExtractBatch(const EmDataset& dataset,
                                      const std::vector<size_t>& indices) const {
  Matrix x(indices.size(), num_features());
  for (size_t r = 0; r < indices.size(); ++r) {
    ExtractInto(dataset.pair(indices[r]), x.row(r));
  }
  return x;
}

}  // namespace landmark
