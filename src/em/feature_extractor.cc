#include "em/feature_extractor.h"

#include "util/check.h"

namespace landmark {

FeatureExtractor::FeatureExtractor(std::shared_ptr<const Schema> entity_schema)
    : schema_(std::move(entity_schema)) {
  LANDMARK_CHECK(schema_ != nullptr);
  names_.reserve(num_features());
  for (const auto& attr : schema_->attribute_names()) {
    for (size_t k = 0; k < kNumAttributeFeatures; ++k) {
      names_.push_back(
          attr + "_" +
          std::string(AttributeFeatureKindName(
              static_cast<AttributeFeatureKind>(k))));
    }
  }
}

Vector FeatureExtractor::Extract(const PairRecord& pair) const {
  LANDMARK_CHECK(pair.left.schema() != nullptr &&
                 pair.left.schema()->Equals(*schema_));
  LANDMARK_CHECK(pair.right.schema() != nullptr &&
                 pair.right.schema()->Equals(*schema_));
  Vector features;
  features.reserve(num_features());
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    std::vector<double> attr_features =
        ComputeAllAttributeFeatures(pair.left.value(a), pair.right.value(a));
    features.insert(features.end(), attr_features.begin(), attr_features.end());
  }
  return features;
}

Matrix FeatureExtractor::ExtractBatch(const EmDataset& dataset,
                                      const std::vector<size_t>& indices) const {
  Matrix x(indices.size(), num_features());
  for (size_t r = 0; r < indices.size(); ++r) {
    Vector features = Extract(dataset.pair(indices[r]));
    std::copy(features.begin(), features.end(), x.row(r));
  }
  return x;
}

}  // namespace landmark
