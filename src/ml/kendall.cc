#include "ml/kendall.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace landmark {

namespace {

int Sign(double d) { return (d > 0.0) - (d < 0.0); }

/// 0-based ranks of the elements when sorted by decreasing `primary`,
/// breaking ties by decreasing `secondary`, then by index (deterministic).
std::vector<size_t> RanksByDecreasing(const std::vector<double>& primary,
                                      const std::vector<double>& secondary) {
  std::vector<size_t> order(primary.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (primary[a] != primary[b]) return primary[a] > primary[b];
    if (secondary[a] != secondary[b]) return secondary[a] > secondary[b];
    return a < b;
  });
  std::vector<size_t> rank(primary.size());
  for (size_t pos = 0; pos < order.size(); ++pos) rank[order[pos]] = pos;
  return rank;
}

/// Weighted tau with ranks taken from one ordering (Vigna's additive
/// hyperbolic weights, normalized so identical rankings give 1).
double WeightedTauWithRanks(const std::vector<double>& x,
                            const std::vector<double>& y,
                            const std::vector<size_t>& rank) {
  const size_t n = x.size();
  double num = 0.0, den_x = 0.0, den_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double wi = 1.0 / static_cast<double>(rank[i] + 1);
    for (size_t j = i + 1; j < n; ++j) {
      const double w = wi + 1.0 / static_cast<double>(rank[j] + 1);
      const int sx = Sign(x[i] - x[j]);
      const int sy = Sign(y[i] - y[j]);
      num += w * sx * sy;
      den_x += w * sx * sx;
      den_y += w * sy * sy;
    }
  }
  const double den = std::sqrt(den_x * den_y);
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace

double KendallTauB(const std::vector<double>& x, const std::vector<double>& y) {
  LANDMARK_CHECK(x.size() == y.size());
  LANDMARK_CHECK(x.size() >= 2);
  const size_t n = x.size();
  long long concordant_minus_discordant = 0;
  long long pairs_x = 0;  // pairs not tied in x
  long long pairs_y = 0;  // pairs not tied in y
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const int sx = Sign(x[i] - x[j]);
      const int sy = Sign(y[i] - y[j]);
      concordant_minus_discordant += sx * sy;
      pairs_x += sx != 0;
      pairs_y += sy != 0;
    }
  }
  if (pairs_x == 0 || pairs_y == 0) return 0.0;
  return static_cast<double>(concordant_minus_discordant) /
         std::sqrt(static_cast<double>(pairs_x) *
                   static_cast<double>(pairs_y));
}

double WeightedKendallTau(const std::vector<double>& x,
                          const std::vector<double>& y) {
  LANDMARK_CHECK(x.size() == y.size());
  LANDMARK_CHECK(x.size() >= 2);
  // scipy's rank=True behaviour: average the statistic computed with ranks
  // from (x desc, y desc) and from (y desc, x desc).
  const double tau_x = WeightedTauWithRanks(x, y, RanksByDecreasing(x, y));
  const double tau_y = WeightedTauWithRanks(x, y, RanksByDecreasing(y, x));
  return 0.5 * (tau_x + tau_y);
}

}  // namespace landmark
