#ifndef LANDMARK_ML_LINALG_H_
#define LANDMARK_ML_LINALG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/result.h"

namespace landmark {

/// Dense vector of doubles.
using Vector = std::vector<double>;

/// \brief Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r`.
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  /// y = A x. Requires x.size() == cols().
  Vector Multiply(const Vector& x) const;

  /// y = Aᵀ x. Requires x.size() == rows().
  Vector MultiplyTransposed(const Vector& x) const;

  /// Returns Aᵀ A weighted by `w` (diagonal): Aᵀ diag(w) A.
  /// Requires w.size() == rows().
  Matrix GramWeighted(const Vector& w) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// y += alpha * x (in place); requires equal sizes.
void Axpy(double alpha, const Vector& x, Vector& y);

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// decomposition. Returns an error when A is not (numerically) SPD.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Solves the weighted ridge system (Xᵀ W X + lambda I) beta = Xᵀ W y.
/// The intercept column, if any, must already be part of X; the caller
/// decides whether to regularize it (this routine regularizes every
/// coefficient uniformly except indices listed in `unpenalized`).
Result<Vector> SolveRidge(const Matrix& x, const Vector& y, const Vector& w,
                          double lambda,
                          const std::vector<size_t>& unpenalized = {});

}  // namespace landmark

#endif  // LANDMARK_ML_LINALG_H_
