#ifndef LANDMARK_ML_LINALG_H_
#define LANDMARK_ML_LINALG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/result.h"

namespace landmark {

/// Dense vector of doubles.
using Vector = std::vector<double>;

/// \brief Dense row-major matrix with an explicit row stride.
///
/// Owns its storage by default. `View` wraps external memory (typically an
/// arena block) without copying; a view with `row_stride > cols` exposes a
/// column-slice of a wider buffer — e.g. the feature block of an augmented
/// design matrix whose last column is the intercept — so SoA rows can be
/// shared between solvers instead of re-packed.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        stride_(cols),
        data_(rows * cols, fill),
        ptr_(data_.data()) {}
  Matrix(const Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        stride_(other.stride_),
        data_(other.data_),
        ptr_(other.owns() ? data_.data() : other.ptr_) {}
  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        stride_(other.stride_),
        ptr_(other.ptr_) {
    const bool owned = other.owns();
    data_ = std::move(other.data_);
    if (owned) ptr_ = data_.data();
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) *this = Matrix(other);
    return *this;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    rows_ = other.rows_;
    cols_ = other.cols_;
    stride_ = other.stride_;
    const bool owned = other.owns();
    ptr_ = other.ptr_;
    data_ = std::move(other.data_);
    if (owned) ptr_ = data_.data();
    return *this;
  }

  static Matrix Identity(size_t n);

  /// Non-owning view over `rows * row_stride` doubles at `data`; row `r`
  /// starts at `data + r * row_stride` and exposes `cols` columns. The
  /// caller keeps the backing memory alive for the view's lifetime.
  static Matrix View(double* data, size_t rows, size_t cols,
                     size_t row_stride);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t row_stride() const { return stride_; }
  /// True when this matrix owns its storage (false for `View`s).
  bool owns() const { return ptr_ == nullptr || ptr_ == data_.data(); }

  double& at(size_t r, size_t c) { return ptr_[r * stride_ + c]; }
  double at(size_t r, size_t c) const { return ptr_[r * stride_ + c]; }

  /// Pointer to the start of row `r`.
  double* row(size_t r) { return ptr_ + r * stride_; }
  const double* row(size_t r) const { return ptr_ + r * stride_; }

  /// y = A x. Requires x.size() == cols().
  Vector Multiply(const Vector& x) const;

  /// y = Aᵀ x. Requires x.size() == rows().
  Vector MultiplyTransposed(const Vector& x) const;

  /// Returns Aᵀ A weighted by `w` (diagonal): Aᵀ diag(w) A.
  /// Requires w.size() == rows().
  Matrix GramWeighted(const Vector& w) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  std::vector<double> data_;
  double* ptr_ = nullptr;
};

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& v);

/// y += alpha * x (in place); requires equal sizes.
void Axpy(double alpha, const Vector& x, Vector& y);

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// decomposition. Returns an error when A is not (numerically) SPD.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Solves the weighted ridge system (Xᵀ W X + lambda I) beta = Xᵀ W y.
/// The intercept column, if any, must already be part of X; the caller
/// decides whether to regularize it (this routine regularizes every
/// coefficient uniformly except indices listed in `unpenalized`).
Result<Vector> SolveRidge(const Matrix& x, const Vector& y, const Vector& w,
                          double lambda,
                          const std::vector<size_t>& unpenalized = {});

}  // namespace landmark

#endif  // LANDMARK_ML_LINALG_H_
