#ifndef LANDMARK_ML_METRICS_H_
#define LANDMARK_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace landmark {

/// \brief 2x2 confusion counts for binary classification.
struct ConfusionMatrix {
  size_t true_positive = 0;
  size_t true_negative = 0;
  size_t false_positive = 0;
  size_t false_negative = 0;

  size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;
};

/// Builds the confusion matrix from 0/1 labels and predictions.
ConfusionMatrix ComputeConfusion(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred);

/// Fraction of equal entries; 0 for empty input.
double Accuracy(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Mean absolute error; 0 for empty input.
double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);

/// Root mean squared error; 0 for empty input.
double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred);

/// Coefficient of determination R²; 0 when y_true is constant.
double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

}  // namespace landmark

#endif  // LANDMARK_ML_METRICS_H_
