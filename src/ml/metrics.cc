#include "ml/metrics.h"

#include <cmath>

#include "util/check.h"

namespace landmark {

double ConfusionMatrix::Accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double ConfusionMatrix::Precision() const {
  const size_t denom = true_positive + false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  const size_t denom = true_positive + false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix ComputeConfusion(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred) {
  LANDMARK_CHECK(y_true.size() == y_pred.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) {
      if (y_pred[i] == 1) ++cm.true_positive;
      else ++cm.false_negative;
    } else {
      if (y_pred[i] == 1) ++cm.false_positive;
      else ++cm.true_negative;
    }
  }
  return cm;
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  LANDMARK_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(y_true.size());
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  LANDMARK_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    total += std::abs(y_true[i] - y_pred[i]);
  }
  return total / static_cast<double>(y_true.size());
}

double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred) {
  LANDMARK_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(y_true.size()));
}

double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  LANDMARK_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace landmark
