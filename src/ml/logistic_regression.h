#ifndef LANDMARK_ML_LOGISTIC_REGRESSION_H_
#define LANDMARK_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "ml/linalg.h"
#include "util/result.h"

namespace landmark {

/// \brief Configuration for LogisticRegression::Fit.
struct LogisticRegressionOptions {
  /// L2 regularization strength on the weights (the intercept is never
  /// penalized). Equivalent to sklearn's 1/C.
  double l2 = 4.0;
  /// Maximum IRLS (Newton) iterations.
  int max_iterations = 100;
  /// Convergence threshold on the max absolute coefficient update.
  double tolerance = 1e-8;
  /// When true, reweights classes inversely proportional to their frequency
  /// (sklearn's class_weight="balanced"); the paper's datasets are heavily
  /// imbalanced (9-24% matches).
  bool balanced_class_weights = true;
};

/// \brief Binary logistic regression fit by iteratively reweighted least
/// squares (Newton's method).
///
/// This is the EM model the paper explains ("The EM model explained in the
/// experiments is a Logistic Regression Classifier"). IRLS is deterministic
/// and converges in a handful of iterations on the Magellan-style feature
/// vectors (a few dozen dimensions), so training needs no learning-rate
/// tuning and experiments are exactly reproducible.
class LogisticRegression {
 public:
  LogisticRegression() = default;

  /// Fits on rows of `x` with 0/1 labels `y`.
  Status Fit(const Matrix& x, const std::vector<int>& y,
             const LogisticRegressionOptions& options = {});

  /// Probability of class 1 for one feature vector.
  double PredictProba(const Vector& features) const;

  /// Pointer form for arena-backed rows; `n` must equal the fitted width.
  double PredictProba(const double* features, size_t n) const;

  /// Probability of class 1 for every row of `x`.
  Vector PredictProbaBatch(const Matrix& x) const;

  /// Hard 0/1 prediction at the given threshold.
  int Predict(const Vector& features, double threshold = 0.5) const;

  bool is_fitted() const { return fitted_; }
  const Vector& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

  /// Numerically stable logistic function.
  static double Sigmoid(double z);

 private:
  Vector coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace landmark

#endif  // LANDMARK_ML_LOGISTIC_REGRESSION_H_
