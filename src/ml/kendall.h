#ifndef LANDMARK_ML_KENDALL_H_
#define LANDMARK_ML_KENDALL_H_

#include <vector>

namespace landmark {

/// \brief Kendall rank correlation coefficients.
///
/// The paper's attribute-based evaluation (Table 3) compares the attribute
/// ranking induced by the EM model's weights with the one induced by the
/// surrogate model, using the *weighted* Kendall tau so that disagreements
/// among the most important attributes cost more than disagreements in the
/// tail.

/// Plain Kendall tau-b (tie-corrected). Returns 0 when either input is
/// constant. Inputs must have equal size >= 2.
double KendallTauB(const std::vector<double>& x, const std::vector<double>& y);

/// Weighted Kendall tau with additive hyperbolic weighting, following
/// Vigna (2015) and scipy.stats.weightedtau's defaults: an exchange between
/// elements of rank r and s (0-based, ranked by decreasing score) weighs
/// 1/(r+1) + 1/(s+1). As in scipy with rank=True, the statistic is the
/// average of the values obtained ranking by decreasing x and by
/// decreasing y.
double WeightedKendallTau(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace landmark

#endif  // LANDMARK_ML_KENDALL_H_
