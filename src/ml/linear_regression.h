#ifndef LANDMARK_ML_LINEAR_REGRESSION_H_
#define LANDMARK_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "ml/linalg.h"
#include "util/result.h"

namespace landmark {

/// \brief A fitted linear model y ≈ w·x + b.
struct LinearModel {
  Vector coefficients;
  double intercept = 0.0;

  double Predict(const Vector& x) const;
};

/// \brief Weighted ridge regression (closed form via normal equations).
///
/// This is the surrogate model family used by LIME and by Landmark
/// Explanation: the per-sample weights come from the locality kernel and the
/// coefficients are the explanation. The intercept is unpenalized.
Result<LinearModel> FitWeightedRidge(const Matrix& x, const Vector& y,
                                     const Vector& sample_weight,
                                     double lambda);

/// \brief Options for FitWeightedLasso.
struct LassoOptions {
  double lambda = 0.01;
  int max_iterations = 1000;
  double tolerance = 1e-7;
};

/// \brief Weighted lasso via cyclic coordinate descent; used for the
/// feature-selection step when the token space is large.
Result<LinearModel> FitWeightedLasso(const Matrix& x, const Vector& y,
                                     const Vector& sample_weight,
                                     const LassoOptions& options);

}  // namespace landmark

#endif  // LANDMARK_ML_LINEAR_REGRESSION_H_
