#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace landmark {

double LogisticRegression::Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y,
                               const LogisticRegressionOptions& options) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (y.size() != n) {
    return Status::InvalidArgument("LogisticRegression::Fit: y size mismatch");
  }
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("LogisticRegression::Fit: empty input");
  }
  size_t n_pos = 0;
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    n_pos += static_cast<size_t>(label);
  }
  if (n_pos == 0 || n_pos == n) {
    return Status::InvalidArgument(
        "LogisticRegression::Fit: training data has a single class");
  }

  // Per-sample weights: balanced class weights give each class the same
  // total weight (n/2 each), as in sklearn's class_weight="balanced".
  Vector sample_weight(n, 1.0);
  if (options.balanced_class_weights) {
    const double w_pos = static_cast<double>(n) / (2.0 * static_cast<double>(n_pos));
    const double w_neg =
        static_cast<double>(n) / (2.0 * static_cast<double>(n - n_pos));
    for (size_t i = 0; i < n; ++i) {
      sample_weight[i] = y[i] == 1 ? w_pos : w_neg;
    }
  }

  // Augmented design: [X | 1]; last coefficient is the intercept.
  Matrix xa(n, d + 1);
  for (size_t r = 0; r < n; ++r) {
    const double* src = x.row(r);
    double* dst = xa.row(r);
    std::copy(src, src + d, dst);
    dst[d] = 1.0;
  }

  Vector beta(d + 1, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // mu_i = sigmoid(x_i beta); IRLS weights w_i = s_i mu_i (1 - mu_i).
    Vector eta = xa.Multiply(beta);
    Vector irls_w(n);
    Vector working_residual(n);  // s_i (y_i - mu_i)
    for (size_t i = 0; i < n; ++i) {
      const double mu = Sigmoid(eta[i]);
      // Floor the curvature so the Newton system stays well conditioned
      // when predictions saturate.
      irls_w[i] = std::max(sample_weight[i] * mu * (1.0 - mu), 1e-10);
      working_residual[i] = sample_weight[i] * (y[i] - mu);
    }

    // Newton step: (Xᵀ W X + lambda I') delta = Xᵀ s(y - mu) - lambda I' beta
    Matrix hessian = xa.GramWeighted(irls_w);
    for (size_t j = 0; j < d; ++j) hessian.at(j, j) += options.l2;
    hessian.at(d, d) += 1e-10;  // keep SPD without penalizing the intercept

    Vector grad = xa.MultiplyTransposed(working_residual);
    for (size_t j = 0; j < d; ++j) grad[j] -= options.l2 * beta[j];

    LANDMARK_ASSIGN_OR_RETURN(Vector delta, CholeskySolve(hessian, grad));

    double max_update = 0.0;
    for (size_t j = 0; j <= d; ++j) {
      beta[j] += delta[j];
      max_update = std::max(max_update, std::abs(delta[j]));
    }
    if (max_update < options.tolerance) break;
  }

  coef_.assign(beta.begin(), beta.begin() + d);
  intercept_ = beta[d];
  fitted_ = true;
  return Status::OK();
}

double LogisticRegression::PredictProba(const Vector& features) const {
  return PredictProba(features.data(), features.size());
}

double LogisticRegression::PredictProba(const double* features,
                                        size_t n) const {
  LANDMARK_CHECK_MSG(fitted_, "model is not fitted");
  LANDMARK_CHECK(n == coef_.size());
  // Accumulation order matches Dot(features, coef_) + intercept_ so both
  // overloads return the same bits.
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += features[i] * coef_[i];
  return Sigmoid(acc + intercept_);
}

Vector LogisticRegression::PredictProbaBatch(const Matrix& x) const {
  LANDMARK_CHECK_MSG(fitted_, "model is not fitted");
  LANDMARK_CHECK(x.cols() == coef_.size());
  Vector out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row(r);
    double z = intercept_;
    for (size_t c = 0; c < coef_.size(); ++c) z += row[c] * coef_[c];
    out[r] = Sigmoid(z);
  }
  return out;
}

int LogisticRegression::Predict(const Vector& features, double threshold) const {
  return PredictProba(features) >= threshold ? 1 : 0;
}

}  // namespace landmark
