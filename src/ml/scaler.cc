#include "ml/scaler.h"

#include <cmath>

namespace landmark {

Status StandardScaler::Fit(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("StandardScaler::Fit: empty input");
  }
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.row(r);
    for (size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.row(r);
    for (size_t c = 0; c < d; ++c) {
      const double diff = row[c] - mean_[c];
      std_[c] += diff * diff;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s == 0.0) s = 1.0;  // constant column: center only
  }
  fitted_ = true;
  return Status::OK();
}

Status StandardScaler::TransformInPlace(Matrix& x) const {
  if (!fitted_) return Status::FailedPrecondition("scaler is not fitted");
  if (x.cols() != mean_.size()) {
    return Status::InvalidArgument("StandardScaler: column count mismatch");
  }
  for (size_t r = 0; r < x.rows(); ++r) {
    double* row = x.row(r);
    for (size_t c = 0; c < mean_.size(); ++c) {
      row[c] = (row[c] - mean_[c]) / std_[c];
    }
  }
  return Status::OK();
}

Status StandardScaler::TransformInPlace(Vector& v) const {
  return TransformInPlace(v.data(), v.size());
}

Status StandardScaler::TransformInPlace(double* v, size_t n) const {
  if (!fitted_) return Status::FailedPrecondition("scaler is not fitted");
  if (n != mean_.size()) {
    return Status::InvalidArgument("StandardScaler: size mismatch");
  }
  for (size_t c = 0; c < mean_.size(); ++c) {
    v[c] = (v[c] - mean_[c]) / std_[c];
  }
  return Status::OK();
}

}  // namespace landmark
