#include "ml/linear_regression.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace landmark {

double LinearModel::Predict(const Vector& x) const {
  LANDMARK_CHECK(x.size() == coefficients.size());
  return Dot(x, coefficients) + intercept;
}

Result<LinearModel> FitWeightedRidge(const Matrix& x, const Vector& y,
                                     const Vector& sample_weight,
                                     double lambda) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (y.size() != n || sample_weight.size() != n) {
    return Status::InvalidArgument("FitWeightedRidge: shape mismatch");
  }
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("FitWeightedRidge: empty input");
  }
  // Augment with an intercept column and solve with the intercept
  // unpenalized.
  Matrix xa(n, d + 1);
  for (size_t r = 0; r < n; ++r) {
    const double* src = x.row(r);
    double* dst = xa.row(r);
    std::copy(src, src + d, dst);
    dst[d] = 1.0;
  }
  LANDMARK_ASSIGN_OR_RETURN(Vector beta,
                            SolveRidge(xa, y, sample_weight, lambda, {d}));
  LinearModel model;
  model.coefficients.assign(beta.begin(), beta.begin() + d);
  model.intercept = beta[d];
  return model;
}

Result<LinearModel> FitWeightedLasso(const Matrix& x, const Vector& y,
                                     const Vector& sample_weight,
                                     const LassoOptions& options) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (y.size() != n || sample_weight.size() != n) {
    return Status::InvalidArgument("FitWeightedLasso: shape mismatch");
  }
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("FitWeightedLasso: empty input");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("FitWeightedLasso: lambda must be >= 0");
  }

  // Precompute weighted column norms; columns with zero norm keep beta = 0.
  Vector col_norm_sq(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.row(r);
    for (size_t c = 0; c < d; ++c) {
      col_norm_sq[c] += sample_weight[r] * row[c] * row[c];
    }
  }

  Vector beta(d, 0.0);
  double intercept = 0.0;
  double weight_total = 0.0;
  for (double w : sample_weight) weight_total += w;
  if (weight_total <= 0.0) {
    return Status::InvalidArgument("FitWeightedLasso: weights sum to zero");
  }

  // residual_i = y_i - (w·x_i + b), maintained incrementally.
  Vector residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i];

  auto refit_intercept = [&]() {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += sample_weight[i] * (residual[i] + intercept);
    }
    const double new_intercept = acc / weight_total;
    const double delta = new_intercept - intercept;
    if (delta != 0.0) {
      for (size_t i = 0; i < n; ++i) residual[i] -= delta;
      intercept = new_intercept;
    }
  };
  refit_intercept();

  const double soft = options.lambda * static_cast<double>(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_update = 0.0;
    for (size_t c = 0; c < d; ++c) {
      if (col_norm_sq[c] <= 0.0) continue;
      // rho = sum_i w_i x_ic (residual_i + beta_c x_ic)
      double rho = 0.0;
      for (size_t r = 0; r < n; ++r) {
        const double xic = x.at(r, c);
        if (xic == 0.0) continue;
        rho += sample_weight[r] * xic * (residual[r] + beta[c] * xic);
      }
      double new_beta;
      if (rho > soft) {
        new_beta = (rho - soft) / col_norm_sq[c];
      } else if (rho < -soft) {
        new_beta = (rho + soft) / col_norm_sq[c];
      } else {
        new_beta = 0.0;
      }
      const double delta = new_beta - beta[c];
      if (delta != 0.0) {
        for (size_t r = 0; r < n; ++r) {
          const double xic = x.at(r, c);
          if (xic != 0.0) residual[r] -= delta * xic;
        }
        beta[c] = new_beta;
        max_update = std::max(max_update, std::abs(delta));
      }
    }
    refit_intercept();
    if (max_update < options.tolerance) break;
  }

  LinearModel model;
  model.coefficients = std::move(beta);
  model.intercept = intercept;
  return model;
}

}  // namespace landmark
