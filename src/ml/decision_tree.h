#ifndef LANDMARK_ML_DECISION_TREE_H_
#define LANDMARK_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/linalg.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// \brief Configuration for decision-tree induction.
struct DecisionTreeOptions {
  int max_depth = 12;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// Number of feature candidates evaluated per split; 0 = all features.
  /// Random forests pass ~sqrt(d).
  size_t max_features = 0;
};

/// \brief Binary CART classification tree (Gini impurity, axis-aligned
/// threshold splits), the base learner of RandomForest.
///
/// Leaves store the positive-class probability estimated from (optionally
/// weighted) training counts, so PredictProba is smooth enough for the
/// perturbation-based explainers to probe.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits on rows of `x` with 0/1 labels. `sample_weight` is optional
  /// (empty = uniform). `rng` is only used when options.max_features > 0.
  Status Fit(const Matrix& x, const std::vector<int>& y,
             const std::vector<double>& sample_weight,
             const DecisionTreeOptions& options, Rng* rng = nullptr);

  /// Probability of class 1.
  double PredictProba(const Vector& features) const;

  /// Pointer form for arena-backed rows.
  double PredictProba(const double* features, size_t n) const;

  bool is_fitted() const { return !nodes_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }

  /// Total Gini-impurity decrease contributed by each feature (sklearn's
  /// feature_importances_ before normalization).
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

 private:
  struct Node {
    // Internal: feature >= 0; leaf: feature == -1.
    int32_t feature = -1;
    double threshold = 0.0;   // go left when x[feature] <= threshold
    int32_t left = -1;
    int32_t right = -1;
    double probability = 0.0;  // leaf positive-class probability
  };

  int32_t Build(const Matrix& x, const std::vector<int>& y,
                const std::vector<double>& w, std::vector<size_t>& indices,
                size_t begin, size_t end, int depth,
                const DecisionTreeOptions& options, Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> importances_;
  int depth_ = 0;
};

/// \brief Configuration for RandomForest::Fit.
struct RandomForestOptions {
  size_t num_trees = 30;
  DecisionTreeOptions tree;
  /// Fraction of the training set bootstrapped per tree.
  double subsample = 1.0;
  uint64_t seed = 1234;
  /// When true (default), each split considers ~sqrt(d) random features.
  bool random_feature_subsets = true;
};

/// \brief Bagged ensemble of CART trees; the nonlinear EM model used to
/// demonstrate model-agnostic explanation.
class RandomForest {
 public:
  /// `sample_weight` (empty = uniform) multiplies the bootstrap counts, so
  /// class rebalancing composes with bagging.
  Status Fit(const Matrix& x, const std::vector<int>& y,
             const RandomForestOptions& options = {},
             const std::vector<double>& sample_weight = {});

  /// Mean of the trees' leaf probabilities.
  double PredictProba(const Vector& features) const;

  /// Pointer form for arena-backed rows.
  double PredictProba(const double* features, size_t n) const;

  bool is_fitted() const { return !trees_.empty(); }
  size_t num_trees() const { return trees_.size(); }

  /// Mean per-tree impurity-decrease importances, normalized to sum to 1.
  std::vector<double> FeatureImportances() const;

 private:
  std::vector<DecisionTree> trees_;
  size_t num_features_ = 0;
};

}  // namespace landmark

#endif  // LANDMARK_ML_DECISION_TREE_H_
