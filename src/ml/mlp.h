#ifndef LANDMARK_ML_MLP_H_
#define LANDMARK_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "ml/linalg.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// \brief Configuration for Mlp::Fit.
struct MlpOptions {
  /// Hidden layer widths; {32, 16} builds in -> 32 -> 16 -> 1.
  std::vector<size_t> hidden = {32, 16};
  int epochs = 30;
  size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam step size
  double l2 = 1e-4;             // weight decay on all weights
  uint64_t seed = 7;
  /// Rebalance classes through per-sample loss weights.
  bool balanced_class_weights = true;
};

/// \brief Small fully-connected binary classifier: ReLU hidden layers, a
/// sigmoid output, log-loss, trained with mini-batch Adam.
///
/// This is the deep-learning substrate for the neural EM model
/// (EmbeddingEmModel) — the class of models (DeepER, DeepMatcher, DITTO)
/// whose opacity motivates the paper. Everything is implemented from
/// scratch on the dense kernels in ml/linalg.h.
class Mlp {
 public:
  /// Trains on rows of `x` with 0/1 labels.
  Status Fit(const Matrix& x, const std::vector<int>& y,
             const MlpOptions& options = {});

  /// Probability of class 1.
  double PredictProba(const Vector& features) const;

  bool is_fitted() const { return !layers_.empty(); }
  size_t num_parameters() const;

 private:
  struct Layer {
    Matrix weights;  // out x in
    Vector bias;     // out
  };

  /// Forward pass; fills per-layer post-activations (activations[0] = input).
  double Forward(const Vector& input,
                 std::vector<Vector>* activations) const;

  std::vector<Layer> layers_;
  size_t input_dim_ = 0;
};

}  // namespace landmark

#endif  // LANDMARK_ML_MLP_H_
