#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace landmark {

namespace {

double Gini(double w_pos, double w_total) {
  if (w_total <= 0.0) return 0.0;
  const double p = w_pos / w_total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

int32_t DecisionTree::Build(const Matrix& x, const std::vector<int>& y,
                            const std::vector<double>& w,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, int depth,
                            const DecisionTreeOptions& options, Rng* rng) {
  const size_t n = end - begin;
  double w_total = 0.0, w_pos = 0.0;
  for (size_t i = begin; i < end; ++i) {
    w_total += w[indices[i]];
    w_pos += w[indices[i]] * y[indices[i]];
  }

  Node node;
  node.probability = w_total > 0.0 ? w_pos / w_total : 0.0;
  depth_ = std::max(depth_, depth);

  const bool pure = w_pos <= 0.0 || w_pos >= w_total;
  if (depth >= options.max_depth || n < options.min_samples_split || pure) {
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  // Candidate features.
  const size_t d = x.cols();
  std::vector<size_t> candidates;
  if (options.max_features > 0 && options.max_features < d) {
    LANDMARK_CHECK_MSG(rng != nullptr,
                       "max_features requires an Rng for feature sampling");
    candidates = rng->SampleWithoutReplacement(d, options.max_features);
  } else {
    candidates.resize(d);
    std::iota(candidates.begin(), candidates.end(), 0);
  }

  const double parent_impurity_mass = w_total * Gini(w_pos, w_total);
  double best_gain = 1e-12;
  int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted(indices.begin() + begin, indices.begin() + end);
  for (size_t feature : candidates) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x.at(a, feature) < x.at(b, feature);
    });
    double w_left = 0.0, w_left_pos = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      const size_t idx = sorted[i];
      w_left += w[idx];
      w_left_pos += w[idx] * y[idx];
      const double v = x.at(idx, feature);
      const double v_next = x.at(sorted[i + 1], feature);
      if (v == v_next) continue;  // cannot split between equal values
      if (i + 1 < options.min_samples_leaf ||
          n - i - 1 < options.min_samples_leaf) {
        continue;
      }
      const double w_right = w_total - w_left;
      const double w_right_pos = w_pos - w_left_pos;
      const double child_mass = w_left * Gini(w_left_pos, w_left) +
                                w_right * Gini(w_right_pos, w_right);
      const double gain = parent_impurity_mass - child_mass;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(feature);
        // Split on `x <= v`: the midpoint 0.5*(v + v_next) can round up to
        // v_next for adjacent doubles, which would leave the right side
        // empty; v itself is always a valid separator since v < v_next.
        best_threshold = v;
      }
    }
  }

  if (best_feature < 0) {
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  // Partition [begin, end) in place by the chosen split.
  auto middle = std::stable_partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t idx) {
        return x.at(idx, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  const size_t split = static_cast<size_t>(middle - indices.begin());
  LANDMARK_CHECK(split > begin && split < end);

  importances_[static_cast<size_t>(best_feature)] += best_gain;

  // Reserve this node's slot before recursing (children get later ids).
  node.feature = best_feature;
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const int32_t node_id = static_cast<int32_t>(nodes_.size() - 1);

  const int32_t left =
      Build(x, y, w, indices, begin, split, depth + 1, options, rng);
  const int32_t right =
      Build(x, y, w, indices, split, end, depth + 1, options, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

Status DecisionTree::Fit(const Matrix& x, const std::vector<int>& y,
                         const std::vector<double>& sample_weight,
                         const DecisionTreeOptions& options, Rng* rng) {
  const size_t n = x.rows();
  if (n == 0 || x.cols() == 0) {
    return Status::InvalidArgument("DecisionTree::Fit: empty input");
  }
  if (y.size() != n) {
    return Status::InvalidArgument("DecisionTree::Fit: y size mismatch");
  }
  if (!sample_weight.empty() && sample_weight.size() != n) {
    return Status::InvalidArgument(
        "DecisionTree::Fit: sample_weight size mismatch");
  }
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
  }

  nodes_.clear();
  depth_ = 0;
  importances_.assign(x.cols(), 0.0);
  std::vector<double> weights =
      sample_weight.empty() ? std::vector<double>(n, 1.0) : sample_weight;
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  Build(x, y, weights, indices, 0, n, 0, options, rng);
  return Status::OK();
}

double DecisionTree::PredictProba(const Vector& features) const {
  return PredictProba(features.data(), features.size());
}

double DecisionTree::PredictProba(const double* features, size_t n) const {
  LANDMARK_CHECK_MSG(is_fitted(), "tree is not fitted");
  int32_t node_id = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.feature < 0) return node.probability;
    LANDMARK_CHECK(static_cast<size_t>(node.feature) < n);
    node_id = features[static_cast<size_t>(node.feature)] <= node.threshold
                  ? node.left
                  : node.right;
  }
}

Status RandomForest::Fit(const Matrix& x, const std::vector<int>& y,
                         const RandomForestOptions& options,
                         const std::vector<double>& sample_weight) {
  const size_t n = x.rows();
  if (n == 0 || x.cols() == 0) {
    return Status::InvalidArgument("RandomForest::Fit: empty input");
  }
  if (y.size() != n) {
    return Status::InvalidArgument("RandomForest::Fit: y size mismatch");
  }
  if (options.num_trees == 0) {
    return Status::InvalidArgument("RandomForest::Fit: num_trees must be > 0");
  }
  if (options.subsample <= 0.0 || options.subsample > 1.0) {
    return Status::InvalidArgument("RandomForest::Fit: bad subsample");
  }
  if (!sample_weight.empty() && sample_weight.size() != n) {
    return Status::InvalidArgument(
        "RandomForest::Fit: sample_weight size mismatch");
  }

  num_features_ = x.cols();
  trees_.clear();
  trees_.reserve(options.num_trees);
  Rng rng(options.seed);

  DecisionTreeOptions tree_options = options.tree;
  if (options.random_feature_subsets && tree_options.max_features == 0) {
    tree_options.max_features = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(
               static_cast<double>(num_features_)))));
  }

  const size_t bag_size = std::max<size_t>(
      1, static_cast<size_t>(std::lround(options.subsample * n)));
  for (size_t t = 0; t < options.num_trees; ++t) {
    // Bootstrap: express the bag as per-sample weights, scaled by any
    // caller-provided weights (e.g. class rebalancing).
    std::vector<double> weights(n, 0.0);
    for (size_t i = 0; i < bag_size; ++i) {
      const size_t pick = static_cast<size_t>(rng.NextUint64(n));
      weights[pick] += sample_weight.empty() ? 1.0 : sample_weight[pick];
    }
    DecisionTree tree;
    Rng tree_rng = rng.Fork();
    LANDMARK_RETURN_NOT_OK(tree.Fit(x, y, weights, tree_options, &tree_rng));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::PredictProba(const Vector& features) const {
  return PredictProba(features.data(), features.size());
}

double RandomForest::PredictProba(const double* features, size_t n) const {
  LANDMARK_CHECK_MSG(is_fitted(), "forest is not fitted");
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.PredictProba(features, n);
  return total / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportances() const {
  std::vector<double> importances(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& ti = tree.feature_importances();
    for (size_t f = 0; f < num_features_; ++f) importances[f] += ti[f];
  }
  double total = 0.0;
  for (double v : importances) total += v;
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

}  // namespace landmark
