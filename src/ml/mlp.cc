#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/logistic_regression.h"
#include "util/check.h"

namespace landmark {

namespace {

/// Flat Adam state over all parameters of one layer.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
};

}  // namespace

double Mlp::Forward(const Vector& input,
                    std::vector<Vector>* activations) const {
  LANDMARK_CHECK(input.size() == input_dim_);
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(input);
  }
  Vector current = input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Vector next = layer.weights.Multiply(current);
    for (size_t i = 0; i < next.size(); ++i) next[i] += layer.bias[i];
    const bool is_output = l + 1 == layers_.size();
    if (!is_output) {
      for (double& v : next) v = std::max(0.0, v);  // ReLU
    }
    if (activations != nullptr) activations->push_back(next);
    current = std::move(next);
  }
  return LogisticRegression::Sigmoid(current[0]);
}

Status Mlp::Fit(const Matrix& x, const std::vector<int>& y,
                const MlpOptions& options) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("Mlp::Fit: empty input");
  }
  if (y.size() != n) {
    return Status::InvalidArgument("Mlp::Fit: y size mismatch");
  }
  if (options.epochs <= 0 || options.batch_size == 0) {
    return Status::InvalidArgument("Mlp::Fit: bad epochs/batch_size");
  }
  size_t n_pos = 0;
  for (int label : y) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    n_pos += static_cast<size_t>(label);
  }
  if (n_pos == 0 || n_pos == n) {
    return Status::InvalidArgument("Mlp::Fit: single-class training data");
  }

  // He-initialized layers.
  Rng rng(options.seed);
  input_dim_ = d;
  layers_.clear();
  std::vector<size_t> widths = options.hidden;
  widths.push_back(1);
  size_t fan_in = d;
  for (size_t width : widths) {
    if (width == 0) return Status::InvalidArgument("zero-width layer");
    Layer layer;
    layer.weights = Matrix(width, fan_in);
    layer.bias = Vector(width, 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (size_t r = 0; r < width; ++r) {
      for (size_t c = 0; c < fan_in; ++c) {
        layer.weights.at(r, c) = rng.NextGaussian() * scale;
      }
    }
    layers_.push_back(std::move(layer));
    fan_in = width;
  }

  Vector sample_weight(n, 1.0);
  if (options.balanced_class_weights) {
    const double w_pos = static_cast<double>(n) / (2.0 * static_cast<double>(n_pos));
    const double w_neg =
        static_cast<double>(n) / (2.0 * static_cast<double>(n - n_pos));
    for (size_t i = 0; i < n; ++i) {
      sample_weight[i] = y[i] == 1 ? w_pos : w_neg;
    }
  }

  // Adam state per layer (weights then bias, flattened).
  std::vector<AdamState> adam(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    const size_t params =
        layers_[l].weights.rows() * layers_[l].weights.cols() +
        layers_[l].bias.size();
    adam[l].m.assign(params, 0.0);
    adam[l].v.assign(params, 0.0);
  }
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  int64_t step = 0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Per-layer gradient accumulators, shaped like the layers.
  std::vector<Matrix> grad_w(layers_.size());
  std::vector<Vector> grad_b(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l] = Matrix(layers_[l].weights.rows(), layers_[l].weights.cols());
    grad_b[l] = Vector(layers_[l].bias.size(), 0.0);
  }

  std::vector<Vector> activations;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(n, start + options.batch_size);
      // Zero gradients.
      for (size_t l = 0; l < layers_.size(); ++l) {
        std::fill(grad_w[l].row(0),
                  grad_w[l].row(0) + grad_w[l].rows() * grad_w[l].cols(), 0.0);
        std::fill(grad_b[l].begin(), grad_b[l].end(), 0.0);
      }

      double batch_weight = 0.0;
      for (size_t bi = start; bi < end; ++bi) {
        const size_t idx = order[bi];
        Vector input(x.row(idx), x.row(idx) + d);
        const double p = Forward(input, &activations);
        const double w = sample_weight[idx];
        batch_weight += w;

        // Backprop: dL/dz_out = w (p - y) for sigmoid + log loss.
        Vector delta(1, w * (p - static_cast<double>(y[idx])));
        for (size_t l = layers_.size(); l-- > 0;) {
          const Vector& a_in = activations[l];
          // Accumulate gradients for layer l.
          for (size_t r = 0; r < layers_[l].weights.rows(); ++r) {
            const double dr = delta[r];
            if (dr == 0.0) continue;
            double* grad_row = grad_w[l].row(r);
            for (size_t c = 0; c < layers_[l].weights.cols(); ++c) {
              grad_row[c] += dr * a_in[c];
            }
            grad_b[l][r] += dr;
          }
          if (l == 0) break;
          // Propagate: delta_in = Wᵀ delta, gated by ReLU derivative.
          Vector next_delta(layers_[l].weights.cols(), 0.0);
          for (size_t r = 0; r < layers_[l].weights.rows(); ++r) {
            const double dr = delta[r];
            if (dr == 0.0) continue;
            const double* w_row = layers_[l].weights.row(r);
            for (size_t c = 0; c < next_delta.size(); ++c) {
              next_delta[c] += w_row[c] * dr;
            }
          }
          for (size_t c = 0; c < next_delta.size(); ++c) {
            if (activations[l][c] <= 0.0) next_delta[c] = 0.0;
          }
          delta = std::move(next_delta);
        }
      }
      if (batch_weight <= 0.0) continue;

      // Adam update.
      ++step;
      const double bias_correction1 = 1.0 - std::pow(kBeta1, step);
      const double bias_correction2 = 1.0 - std::pow(kBeta2, step);
      for (size_t l = 0; l < layers_.size(); ++l) {
        const size_t wcount =
            layers_[l].weights.rows() * layers_[l].weights.cols();
        double* weights = layers_[l].weights.row(0);
        const double* grads = grad_w[l].row(0);
        for (size_t p = 0; p < wcount + layers_[l].bias.size(); ++p) {
          const bool is_weight = p < wcount;
          double g = (is_weight ? grads[p] : grad_b[l][p - wcount]) /
                     batch_weight;
          if (is_weight) g += options.l2 * weights[p];
          double& m = adam[l].m[p];
          double& v = adam[l].v[p];
          m = kBeta1 * m + (1.0 - kBeta1) * g;
          v = kBeta2 * v + (1.0 - kBeta2) * g * g;
          const double m_hat = m / bias_correction1;
          const double v_hat = v / bias_correction2;
          const double update =
              options.learning_rate * m_hat / (std::sqrt(v_hat) + kEps);
          if (is_weight) {
            weights[p] -= update;
          } else {
            layers_[l].bias[p - wcount] -= update;
          }
        }
      }
    }
  }
  return Status::OK();
}

double Mlp::PredictProba(const Vector& features) const {
  LANDMARK_CHECK_MSG(is_fitted(), "mlp is not fitted");
  return Forward(features, nullptr);
}

size_t Mlp::num_parameters() const {
  size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.weights.rows() * layer.weights.cols() + layer.bias.size();
  }
  return total;
}

}  // namespace landmark
