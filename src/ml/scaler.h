#ifndef LANDMARK_ML_SCALER_H_
#define LANDMARK_ML_SCALER_H_

#include "ml/linalg.h"
#include "util/status.h"

namespace landmark {

/// \brief Standardizes features to zero mean and unit variance.
///
/// Constant features (zero variance) are centered but not scaled, matching
/// sklearn's StandardScaler behaviour.
class StandardScaler {
 public:
  /// Computes per-column means and standard deviations over rows of `x`.
  Status Fit(const Matrix& x);

  /// Standardizes in place; `x` must have the fitted number of columns.
  Status TransformInPlace(Matrix& x) const;

  /// Standardizes one feature vector in place.
  Status TransformInPlace(Vector& v) const;

  /// Pointer form for arena-backed rows (see util/arena.h): standardizes
  /// `v[0..n)` in place.
  Status TransformInPlace(double* v, size_t n) const;

  bool is_fitted() const { return fitted_; }
  const Vector& means() const { return mean_; }
  const Vector& stddevs() const { return std_; }

 private:
  Vector mean_;
  Vector std_;
  bool fitted_ = false;
};

}  // namespace landmark

#endif  // LANDMARK_ML_SCALER_H_
