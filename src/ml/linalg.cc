#include "ml/linalg.h"

#include <cmath>

#include "util/check.h"
#include "util/simd.h"

namespace landmark {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::View(double* data, size_t rows, size_t cols,
                    size_t row_stride) {
  LANDMARK_CHECK(row_stride >= cols);
  LANDMARK_CHECK(data != nullptr || rows == 0);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.stride_ = row_stride;
  m.ptr_ = data;
  return m;
}

Vector Matrix::Multiply(const Vector& x) const {
  LANDMARK_CHECK(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::MultiplyTransposed(const Vector& x) const {
  LANDMARK_CHECK(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    // Element-wise accumulate: lane-independent, so the SIMD path is
    // bit-identical to the scalar loop (util/simd.h exactness contract).
    simd::AddScaled(y.data(), a, xr, cols_);
  }
  return y;
}

Matrix Matrix::GramWeighted(const Vector& w) const {
  LANDMARK_CHECK(w.size() == rows_);
  Matrix g(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double wr = w[r];
    if (wr == 0.0) continue;
    for (size_t i = 0; i < cols_; ++i) {
      const double wai = wr * a[i];
      if (wai == 0.0) continue;
      // Rank-1 row update over the upper triangle; per-element order
      // matches the scalar loop exactly.
      simd::AddScaled(g.row(i) + i, a + i, wai, cols_ - i);
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) g.at(j, i) = g.at(i, j);
  }
  return g;
}

double Dot(const Vector& a, const Vector& b) {
  LANDMARK_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double alpha, const Vector& x, Vector& y) {
  LANDMARK_CHECK(x.size() == y.size());
  simd::AddScaled(y.data(), x.data(), alpha, x.size());
}

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: shape mismatch");
  }
  // Decompose A = L Lᵀ in place (lower triangle of `l`).
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::InvalidArgument(
              "CholeskySolve: matrix is not positive definite");
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  // Forward solve L z = b.
  Vector z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.at(i, k) * z[k];
    z[i] = sum / l.at(i, i);
  }
  // Back solve Lᵀ x = z.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.at(k, ii) * x[k];
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

Result<Vector> SolveRidge(const Matrix& x, const Vector& y, const Vector& w,
                          double lambda,
                          const std::vector<size_t>& unpenalized) {
  if (y.size() != x.rows() || w.size() != x.rows()) {
    return Status::InvalidArgument("SolveRidge: shape mismatch");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("SolveRidge: lambda must be >= 0");
  }
  Matrix gram = x.GramWeighted(w);
  for (size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += lambda;
  for (size_t idx : unpenalized) {
    if (idx >= gram.rows()) {
      return Status::OutOfRange("SolveRidge: unpenalized index out of range");
    }
    gram.at(idx, idx) -= lambda;
    // Keep a tiny jitter on the unpenalized diagonal so the system stays
    // solvable when the column is constant-zero.
    gram.at(idx, idx) += 1e-10;
  }
  Vector wy(y.size());
  simd::Multiply(wy.data(), w.data(), y.data(), y.size());
  Vector rhs = x.MultiplyTransposed(wy);
  return CholeskySolve(gram, rhs);
}

}  // namespace landmark
