#ifndef LANDMARK_DATA_VALUE_H_
#define LANDMARK_DATA_VALUE_H_

#include <optional>
#include <string>
#include <utility>

namespace landmark {

/// \brief A single attribute value of an entity.
///
/// EM benchmark data is fundamentally textual; numeric attributes (price,
/// year, ABV...) are stored as their textual form and parsed on demand.
/// A value can be null (missing), which is common in the dirty Magellan
/// variants.
class Value {
 public:
  /// Creates a null value.
  Value() : is_null_(true) {}

  /// Creates a textual value.
  explicit Value(std::string text) : is_null_(false), text_(std::move(text)) {}

  static Value Null() { return Value(); }
  static Value Of(std::string text) { return Value(std::move(text)); }
  static Value OfNumber(double number);

  bool is_null() const { return is_null_; }

  /// The textual form; empty string for null values.
  const std::string& text() const { return text_; }

  /// Parses the value as a number; nullopt for null or non-numeric text.
  std::optional<double> AsDouble() const;

  bool operator==(const Value& other) const {
    return is_null_ == other.is_null_ && text_ == other.text_;
  }

 private:
  bool is_null_;
  std::string text_;
};

}  // namespace landmark

#endif  // LANDMARK_DATA_VALUE_H_
