#ifndef LANDMARK_DATA_EM_DATASET_H_
#define LANDMARK_DATA_EM_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "data/pair_record.h"
#include "data/schema.h"
#include "util/result.h"
#include "util/rng.h"

namespace landmark {

/// \brief Summary statistics in the format of the paper's Table 1.
struct EmDatasetStats {
  size_t size = 0;
  size_t num_match = 0;
  double match_percent = 0.0;  // 100 * num_match / size
};

/// \brief Disjoint train / validation / test views over a dataset.
struct EmDatasetSplit {
  std::vector<size_t> train;
  std::vector<size_t> valid;
  std::vector<size_t> test;
};

/// \brief A labeled EM benchmark dataset: pairs of entities over one entity
/// schema.
class EmDataset {
 public:
  EmDataset() = default;
  EmDataset(std::string name, std::shared_ptr<const Schema> entity_schema)
      : name_(std::move(name)), entity_schema_(std::move(entity_schema)) {}

  const std::string& name() const { return name_; }
  const std::shared_ptr<const Schema>& entity_schema() const {
    return entity_schema_;
  }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const PairRecord& pair(size_t i) const { return pairs_.at(i); }
  const std::vector<PairRecord>& pairs() const { return pairs_; }

  /// Appends a pair; both entities must use the dataset's entity schema.
  Status Append(PairRecord pair);

  /// Table-1-style statistics.
  EmDatasetStats Stats() const;

  /// Returns indices of pairs with the given label.
  std::vector<size_t> IndicesWithLabel(MatchLabel label) const;

  /// Samples up to `k` pair indices with the given label, uniformly without
  /// replacement (all of them when fewer than `k` exist) — the paper's
  /// "100 records per label, all records when the dataset contains less".
  std::vector<size_t> SampleByLabel(MatchLabel label, size_t k, Rng& rng) const;

  /// Stratified split with the given fractions (train gets the remainder).
  /// Fractions must be in [0,1] and sum to at most 1.
  Result<EmDatasetSplit> Split(double valid_fraction, double test_fraction,
                               Rng& rng) const;

 private:
  std::string name_;
  std::shared_ptr<const Schema> entity_schema_;
  std::vector<PairRecord> pairs_;
};

}  // namespace landmark

#endif  // LANDMARK_DATA_EM_DATASET_H_
