#include "data/value.h"

#include "util/string_util.h"

namespace landmark {

Value Value::OfNumber(double number) {
  // Render integers without a decimal point, otherwise 2 decimals (prices,
  // ratings and similar benchmark attributes).
  if (number == static_cast<long long>(number)) {
    return Value(std::to_string(static_cast<long long>(number)));
  }
  return Value(FormatDouble(number, 2));
}

std::optional<double> Value::AsDouble() const {
  if (is_null_) return std::nullopt;
  return ParseDouble(text_);
}

}  // namespace landmark
