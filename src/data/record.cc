#include "data/record.h"

#include <sstream>

namespace landmark {

Result<Record> Record::Make(std::shared_ptr<const Schema> schema,
                            std::vector<Value> values) {
  if (schema == nullptr) {
    return Status::InvalidArgument("record needs a schema");
  }
  if (values.size() != schema->num_attributes()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(values.size()) + " values, schema has " +
        std::to_string(schema->num_attributes()) + " attributes");
  }
  return Record(std::move(schema), std::move(values));
}

Record Record::Empty(std::shared_ptr<const Schema> schema) {
  std::vector<Value> values(schema->num_attributes());
  return Record(std::move(schema), std::move(values));
}

Result<Value> Record::ValueOf(const std::string& attribute) const {
  LANDMARK_ASSIGN_OR_RETURN(size_t idx, schema_->IndexOf(attribute));
  return values_[idx];
}

void Record::SetValue(size_t i, Value value) {
  values_.at(i) = std::move(value);
}

std::string Record::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << " ";
    os << schema_->attribute_name(i) << "='"
       << (values_[i].is_null() ? "<null>" : values_[i].text()) << "'";
  }
  return os.str();
}

bool Record::operator==(const Record& other) const {
  if ((schema_ == nullptr) != (other.schema_ == nullptr)) return false;
  if (schema_ != nullptr && !schema_->Equals(*other.schema_)) return false;
  return values_ == other.values_;
}

}  // namespace landmark
