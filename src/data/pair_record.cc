#include "data/pair_record.h"

#include <sstream>

namespace landmark {

std::string_view EntitySideName(EntitySide side) {
  return side == EntitySide::kLeft ? "left" : "right";
}

std::string PairRecord::ToString() const {
  std::ostringstream os;
  os << "pair#" << id << " [" << (is_match() ? "match" : "non-match") << "]\n"
     << "  left:  " << left.ToString() << "\n"
     << "  right: " << right.ToString();
  return os.str();
}

}  // namespace landmark
