#ifndef LANDMARK_DATA_PAIR_RECORD_H_
#define LANDMARK_DATA_PAIR_RECORD_H_

#include <cstdint>
#include <string>

#include "data/record.h"

namespace landmark {

/// Which side of an EM pair an entity sits on.
enum class EntitySide { kLeft, kRight };

/// Returns the opposite side.
inline EntitySide OppositeSide(EntitySide side) {
  return side == EntitySide::kLeft ? EntitySide::kRight : EntitySide::kLeft;
}

/// Returns "left" or "right".
std::string_view EntitySideName(EntitySide side);

/// Match / non-match class of an EM record.
enum class MatchLabel : int { kNonMatch = 0, kMatch = 1 };

/// \brief One EM dataset entry: a pair of entities over a shared entity
/// schema, plus an optional ground-truth label.
///
/// This is the "unusual" record structure the paper's Introduction calls
/// out: each dataset row describes *two* entities, with `left_*` / `right_*`
/// columns that share statistical/word distributions.
struct PairRecord {
  int64_t id = -1;
  Record left;
  Record right;
  MatchLabel label = MatchLabel::kNonMatch;

  const Record& entity(EntitySide side) const {
    return side == EntitySide::kLeft ? left : right;
  }
  Record& entity(EntitySide side) {
    return side == EntitySide::kLeft ? left : right;
  }

  bool is_match() const { return label == MatchLabel::kMatch; }

  /// Renders both entities for logs and examples.
  std::string ToString() const;
};

}  // namespace landmark

#endif  // LANDMARK_DATA_PAIR_RECORD_H_
