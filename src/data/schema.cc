#include "data/schema.h"

namespace landmark {

Schema::Schema(std::vector<std::string> names) : names_(std::move(names)) {
  for (size_t i = 0; i < names_.size(); ++i) index_[names_[i]] = i;
}

Result<std::shared_ptr<const Schema>> Schema::Make(
    std::vector<std::string> attribute_names) {
  if (attribute_names.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::map<std::string, int> seen;
  for (const auto& name : attribute_names) {
    if (name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (++seen[name] > 1) {
      return Status::InvalidArgument("duplicate attribute name: " + name);
    }
  }
  return std::shared_ptr<const Schema>(new Schema(std::move(attribute_names)));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute not in schema: " + name);
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

}  // namespace landmark
