#include "data/dataset_io.h"

#include <cstdlib>

#include "util/string_util.h"
#include "util/telemetry/metrics.h"
#include "util/telemetry/trace.h"
#include "util/timer.h"

namespace landmark {

namespace {
constexpr char kLeftPrefix[] = "left_";
constexpr char kRightPrefix[] = "right_";
}  // namespace

CsvTable EmDatasetToCsv(const EmDataset& dataset) {
  CsvTable table;
  const Schema& schema = *dataset.entity_schema();
  table.header.push_back("id");
  for (const auto& name : schema.attribute_names()) {
    table.header.push_back(kLeftPrefix + name);
  }
  for (const auto& name : schema.attribute_names()) {
    table.header.push_back(kRightPrefix + name);
  }
  table.header.push_back("label");

  for (const auto& pair : dataset.pairs()) {
    std::vector<std::string> row;
    row.reserve(table.header.size());
    row.push_back(std::to_string(pair.id));
    for (const auto& v : pair.left.values()) row.push_back(v.text());
    for (const auto& v : pair.right.values()) row.push_back(v.text());
    row.push_back(pair.is_match() ? "1" : "0");
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<EmDataset> EmDatasetFromCsv(const CsvTable& table,
                                   const std::string& name) {
  // Recover the entity schema from the left_* columns.
  std::vector<std::string> attrs;
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;
  int id_col = -1;
  int label_col = -1;

  for (size_t c = 0; c < table.header.size(); ++c) {
    const std::string& h = table.header[c];
    if (h == "id") {
      id_col = static_cast<int>(c);
    } else if (h == "label") {
      label_col = static_cast<int>(c);
    } else if (StartsWith(h, kLeftPrefix)) {
      attrs.push_back(h.substr(sizeof(kLeftPrefix) - 1));
      left_cols.push_back(c);
    }
  }
  if (label_col < 0) return Status::InvalidArgument("missing 'label' column");
  if (attrs.empty()) {
    return Status::InvalidArgument("no left_* columns found");
  }
  for (const auto& attr : attrs) {
    bool found = false;
    for (size_t c = 0; c < table.header.size(); ++c) {
      if (table.header[c] == kRightPrefix + attr) {
        right_cols.push_back(c);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("missing right_ column for attribute: " +
                                     attr);
    }
  }

  LANDMARK_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                            Schema::Make(attrs));
  EmDataset dataset(name, schema);

  auto cell_to_value = [](const std::string& cell) {
    return cell.empty() ? Value::Null() : Value::Of(cell);
  };

  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    std::vector<Value> left_values, right_values;
    left_values.reserve(attrs.size());
    right_values.reserve(attrs.size());
    for (size_t c : left_cols) left_values.push_back(cell_to_value(row[c]));
    for (size_t c : right_cols) right_values.push_back(cell_to_value(row[c]));

    PairRecord pair;
    LANDMARK_ASSIGN_OR_RETURN(pair.left,
                              Record::Make(schema, std::move(left_values)));
    LANDMARK_ASSIGN_OR_RETURN(pair.right,
                              Record::Make(schema, std::move(right_values)));

    const std::string& label_cell = row[label_col];
    if (label_cell == "1") {
      pair.label = MatchLabel::kMatch;
    } else if (label_cell == "0") {
      pair.label = MatchLabel::kNonMatch;
    } else {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     ": label must be 0 or 1, got '" +
                                     label_cell + "'");
    }
    if (id_col >= 0) {
      pair.id = std::strtoll(row[id_col].c_str(), nullptr, 10);
    }
    LANDMARK_RETURN_NOT_OK(dataset.Append(std::move(pair)));
  }
  return dataset;
}

Status WriteEmDataset(const EmDataset& dataset, const std::string& path) {
  LANDMARK_TRACE_SPAN("io/write_dataset");
  MetricsRegistry& registry = MetricsRegistry::Global();
  ScopedTimer timer(&registry.GetHistogram("io/write_seconds"));
  Status status = WriteCsvFile(EmDatasetToCsv(dataset), path);
  if (status.ok()) {
    registry.GetCounter("io/rows_written").Add(dataset.size());
  }
  return status;
}

Result<EmDataset> ReadEmDataset(const std::string& path,
                                const std::string& name) {
  LANDMARK_TRACE_SPAN("io/read_dataset");
  MetricsRegistry& registry = MetricsRegistry::Global();
  ScopedTimer timer(&registry.GetHistogram("io/read_seconds"));
  LANDMARK_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  Result<EmDataset> dataset = EmDatasetFromCsv(table, name);
  if (dataset.ok()) {
    registry.GetCounter("io/rows_read").Add(dataset->size());
  }
  return dataset;
}

}  // namespace landmark
