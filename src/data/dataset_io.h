#ifndef LANDMARK_DATA_DATASET_IO_H_
#define LANDMARK_DATA_DATASET_IO_H_

#include <string>

#include "data/em_dataset.h"
#include "util/csv.h"
#include "util/result.h"

namespace landmark {

/// \brief Serialization of EM datasets in the Magellan CSV layout:
/// `id,left_<a1>,...,left_<ak>,right_<a1>,...,right_<ak>,label`.
///
/// Null values round-trip as empty cells. `label` is 0/1.

/// Converts a dataset to an in-memory CSV table.
CsvTable EmDatasetToCsv(const EmDataset& dataset);

/// Parses a CSV table into a dataset. The entity schema is inferred from the
/// `left_*` columns; every `left_<a>` must have a matching `right_<a>`.
Result<EmDataset> EmDatasetFromCsv(const CsvTable& table,
                                   const std::string& name);

/// Writes `dataset` to a CSV file at `path`.
Status WriteEmDataset(const EmDataset& dataset, const std::string& path);

/// Reads a dataset from a CSV file.
Result<EmDataset> ReadEmDataset(const std::string& path,
                                const std::string& name);

}  // namespace landmark

#endif  // LANDMARK_DATA_DATASET_IO_H_
