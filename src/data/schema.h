#ifndef LANDMARK_DATA_SCHEMA_H_
#define LANDMARK_DATA_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace landmark {

/// \brief An ordered list of attribute names.
///
/// In an EM dataset both entities of a pair share one entity schema (the
/// paper's datasets all describe the two sides with the same attributes);
/// the pair-level dataset columns are derived as `left_<attr>` /
/// `right_<attr>`.
class Schema {
 public:
  /// Builds a schema; attribute names must be non-empty and unique.
  static Result<std::shared_ptr<const Schema>> Make(
      std::vector<std::string> attribute_names);

  size_t num_attributes() const { return names_.size(); }
  const std::vector<std::string>& attribute_names() const { return names_; }
  const std::string& attribute_name(size_t i) const { return names_.at(i); }

  /// Returns the index of `name`, or an error when absent.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Returns true when `name` is an attribute of this schema.
  bool Contains(const std::string& name) const;

  bool Equals(const Schema& other) const { return names_ == other.names_; }

 private:
  explicit Schema(std::vector<std::string> names);

  std::vector<std::string> names_;
  std::map<std::string, size_t> index_;
};

}  // namespace landmark

#endif  // LANDMARK_DATA_SCHEMA_H_
