#ifndef LANDMARK_DATA_RECORD_H_
#define LANDMARK_DATA_RECORD_H_

#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/value.h"
#include "util/result.h"

namespace landmark {

/// \brief One entity: a schema plus one Value per attribute.
class Record {
 public:
  Record() = default;

  /// Builds a record; `values` must have one entry per schema attribute.
  static Result<Record> Make(std::shared_ptr<const Schema> schema,
                             std::vector<Value> values);

  /// Builds an all-null record over `schema`.
  static Record Empty(std::shared_ptr<const Schema> schema);

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  size_t num_attributes() const { return values_.size(); }

  const Value& value(size_t i) const { return values_.at(i); }
  Result<Value> ValueOf(const std::string& attribute) const;

  /// Replaces the value at attribute index `i`.
  void SetValue(size_t i, Value value);

  const std::vector<Value>& values() const { return values_; }

  /// Renders "attr1='v1' attr2='v2' ..." for logs and examples.
  std::string ToString() const;

  bool operator==(const Record& other) const;

 private:
  Record(std::shared_ptr<const Schema> schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  std::shared_ptr<const Schema> schema_;
  std::vector<Value> values_;
};

}  // namespace landmark

#endif  // LANDMARK_DATA_RECORD_H_
