#include "data/em_dataset.h"

#include <algorithm>

namespace landmark {

Status EmDataset::Append(PairRecord pair) {
  if (entity_schema_ == nullptr) {
    return Status::FailedPrecondition("dataset has no entity schema");
  }
  if (pair.left.schema() == nullptr || pair.right.schema() == nullptr) {
    return Status::InvalidArgument("pair entities must have schemas");
  }
  if (!pair.left.schema()->Equals(*entity_schema_) ||
      !pair.right.schema()->Equals(*entity_schema_)) {
    return Status::InvalidArgument(
        "pair entity schema differs from the dataset entity schema");
  }
  if (pair.id < 0) pair.id = static_cast<int64_t>(pairs_.size());
  pairs_.push_back(std::move(pair));
  return Status::OK();
}

EmDatasetStats EmDataset::Stats() const {
  EmDatasetStats stats;
  stats.size = pairs_.size();
  for (const auto& p : pairs_) {
    if (p.is_match()) ++stats.num_match;
  }
  stats.match_percent =
      stats.size == 0 ? 0.0 : 100.0 * static_cast<double>(stats.num_match) /
                                  static_cast<double>(stats.size);
  return stats;
}

std::vector<size_t> EmDataset::IndicesWithLabel(MatchLabel label) const {
  std::vector<size_t> indices;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (pairs_[i].label == label) indices.push_back(i);
  }
  return indices;
}

std::vector<size_t> EmDataset::SampleByLabel(MatchLabel label, size_t k,
                                             Rng& rng) const {
  std::vector<size_t> indices = IndicesWithLabel(label);
  if (indices.size() <= k) return indices;
  std::vector<size_t> picks = rng.SampleWithoutReplacement(indices.size(), k);
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t p : picks) out.push_back(indices[p]);
  std::sort(out.begin(), out.end());
  return out;
}

Result<EmDatasetSplit> EmDataset::Split(double valid_fraction,
                                        double test_fraction, Rng& rng) const {
  if (valid_fraction < 0.0 || test_fraction < 0.0 ||
      valid_fraction + test_fraction > 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }
  EmDatasetSplit split;
  // Stratify by label so the imbalanced match class is present in every
  // partition.
  for (MatchLabel label : {MatchLabel::kNonMatch, MatchLabel::kMatch}) {
    std::vector<size_t> indices = IndicesWithLabel(label);
    rng.Shuffle(indices);
    size_t n = indices.size();
    size_t n_valid = static_cast<size_t>(valid_fraction * n);
    size_t n_test = static_cast<size_t>(test_fraction * n);
    size_t i = 0;
    for (; i < n_valid; ++i) split.valid.push_back(indices[i]);
    for (; i < n_valid + n_test; ++i) split.test.push_back(indices[i]);
    for (; i < n; ++i) split.train.push_back(indices[i]);
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.valid.begin(), split.valid.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace landmark
