#include "datagen/domains.h"

#include <string>
#include <vector>

#include "datagen/word_banks.h"
#include "util/check.h"
#include "util/string_util.h"

namespace landmark {

namespace {

std::string W(std::string_view sv) { return std::string(sv); }

/// Joins non-empty parts with single spaces.
std::string JoinParts(const std::vector<std::string>& parts) {
  std::vector<std::string> non_empty;
  for (const auto& p : parts) {
    if (!p.empty()) non_empty.push_back(p);
  }
  return Join(non_empty, " ");
}

std::shared_ptr<const Schema> MakeSchemaOrDie(
    std::vector<std::string> names) {
  return Schema::Make(std::move(names)).ValueOrDie();
}

Record MakeRecordOrDie(std::shared_ptr<const Schema> schema,
                       std::vector<Value> values) {
  return Record::Make(std::move(schema), std::move(values)).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Beer (BeerAdvo-RateBeer): beer_name, brew_factory_name, style, abv
// ---------------------------------------------------------------------------

class BeerGenerator : public EntityGenerator {
 public:
  BeerGenerator()
      : schema_(MakeSchemaOrDie(
            {"beer_name", "brew_factory_name", "style", "abv"})) {}

  const std::shared_ptr<const Schema>& schema() const override {
    return schema_;
  }

  Record Generate(Rng& rng) const override {
    const std::string brewery = RandomBrewery(rng);
    return Build(brewery, rng);
  }

  Record GenerateSibling(const Record& base, Rng& rng) const override {
    // Same brewery, different beer.
    return Build(base.value(1).text(), rng);
  }

 private:
  std::string RandomBrewery(Rng& rng) const {
    return JoinParts({W(PickWord(words::LastNames(), rng)),
                      W(PickWord(words::BrewerySuffixes(), rng))});
  }

  Record Build(const std::string& brewery, Rng& rng) const {
    const std::string style = W(PickWord(words::BeerStyleWords(), rng));
    std::vector<std::string> name_parts = {
        W(PickWord(words::BeerNameWords(), rng)),
        W(PickWord(words::BeerNameWords(), rng))};
    if (rng.NextBernoulli(0.6)) name_parts.push_back(style);
    const double abv = 4.0 + rng.NextDouble() * 8.0;
    return MakeRecordOrDie(
        schema_,
        {Value::Of(JoinParts(name_parts)), Value::Of(brewery),
         Value::Of(style),
         Value::Of(FormatDouble(abv, 1) + " %")});
  }

  std::shared_ptr<const Schema> schema_;
};

// ---------------------------------------------------------------------------
// Music (iTunes-Amazon): song_name, artist_name, album_name, genre, price,
// released
// ---------------------------------------------------------------------------

class MusicGenerator : public EntityGenerator {
 public:
  MusicGenerator()
      : schema_(MakeSchemaOrDie({"song_name", "artist_name", "album_name",
                                 "genre", "price", "released"})) {}

  const std::shared_ptr<const Schema>& schema() const override {
    return schema_;
  }

  Record Generate(Rng& rng) const override {
    return Build(RandomArtist(rng), RandomAlbum(rng), rng);
  }

  Record GenerateSibling(const Record& base, Rng& rng) const override {
    // Same artist; usually the same album (another track of it).
    const std::string album =
        rng.NextBernoulli(0.7) ? base.value(2).text() : RandomAlbum(rng);
    return Build(base.value(1).text(), album, rng);
  }

 private:
  std::string RandomArtist(Rng& rng) const {
    if (rng.NextBernoulli(0.25)) {
      return JoinParts({"the", W(PickWord(words::SongWords(), rng)) + "s"});
    }
    return JoinParts({W(PickWord(words::FirstNames(), rng)),
                      W(PickWord(words::LastNames(), rng))});
  }

  std::string RandomAlbum(Rng& rng) const {
    if (rng.NextBernoulli(0.5)) {
      return W(PickWord(words::AlbumWords(), rng));
    }
    return JoinParts({W(PickWord(words::SongWords(), rng)),
                      W(PickWord(words::AlbumWords(), rng))});
  }

  Record Build(const std::string& artist, const std::string& album,
               Rng& rng) const {
    std::vector<std::string> song = {W(PickWord(words::SongWords(), rng)),
                                     W(PickWord(words::SongWords(), rng))};
    if (rng.NextBernoulli(0.4)) {
      song.push_back(W(PickWord(words::SongWords(), rng)));
    }
    const double price = rng.NextBernoulli(0.7) ? 0.99 : 1.29;
    const int year = static_cast<int>(rng.NextInt(2003, 2019));
    static constexpr std::string_view kMonths[] = {
        "january", "february", "march",     "april",   "may",      "june",
        "july",    "august",   "september", "october", "november", "december"};
    const std::string released =
        JoinParts({W(kMonths[rng.NextUint64(12)]),
                   std::to_string(rng.NextInt(1, 28)) + ",",
                   std::to_string(year)});
    return MakeRecordOrDie(
        schema_, {Value::Of(JoinParts(song)), Value::Of(artist),
                  Value::Of(album), Value::Of(W(PickWord(words::Genres(), rng))),
                  Value::Of("$ " + FormatDouble(price, 2)),
                  Value::Of(released)});
  }

  std::shared_ptr<const Schema> schema_;
};

// ---------------------------------------------------------------------------
// Restaurant (Fodors-Zagats): name, addr, city, phone, type, class
// ---------------------------------------------------------------------------

class RestaurantGenerator : public EntityGenerator {
 public:
  RestaurantGenerator()
      : schema_(MakeSchemaOrDie(
            {"name", "addr", "city", "phone", "type", "class"})) {}

  const std::shared_ptr<const Schema>& schema() const override {
    return schema_;
  }

  Record Generate(Rng& rng) const override {
    return Build(W(PickWord(words::Cities(), rng)), rng);
  }

  Record GenerateSibling(const Record& base, Rng& rng) const override {
    // Another restaurant in the same city, often the same cuisine.
    Record sibling = Build(base.value(2).text(), rng);
    if (rng.NextBernoulli(0.5)) sibling.SetValue(4, base.value(4));
    return sibling;
  }

 private:
  Record Build(const std::string& city, Rng& rng) const {
    const std::string name =
        JoinParts({W(PickWord(words::RestaurantNameWords(), rng)),
                   W(PickWord(words::RestaurantNameWords(), rng)),
                   W(PickWord(words::RestaurantNouns(), rng))});
    const std::string addr =
        JoinParts({std::to_string(rng.NextInt(1, 9999)),
                   W(PickWord(words::StreetNames(), rng))});
    const std::string phone =
        std::to_string(rng.NextInt(200, 989)) + "/" +
        std::to_string(rng.NextInt(200, 989)) + "-" +
        std::to_string(rng.NextInt(1000, 9999));
    return MakeRecordOrDie(
        schema_,
        {Value::Of(name), Value::Of(addr), Value::Of(city), Value::Of(phone),
         Value::Of(W(PickWord(words::CuisineTypes(), rng))),
         Value::Of(std::to_string(rng.NextInt(0, 700)))});
  }

  std::shared_ptr<const Schema> schema_;
};

// ---------------------------------------------------------------------------
// Citations (DBLP-ACM / DBLP-GoogleScholar): title, authors, venue, year
// ---------------------------------------------------------------------------

class CitationGenerator : public EntityGenerator {
 public:
  explicit CitationGenerator(bool noisy_venues)
      : noisy_venues_(noisy_venues),
        schema_(MakeSchemaOrDie({"title", "authors", "venue", "year"})) {}

  const std::shared_ptr<const Schema>& schema() const override {
    return schema_;
  }

  Record Generate(Rng& rng) const override {
    return Build(RandomTitleWords(rng), rng);
  }

  Record GenerateSibling(const Record& base, Rng& rng) const override {
    // A paper with an overlapping title (shared topic words), different
    // authors/venue/year — the classic DBLP near-miss.
    std::vector<std::string> base_title = SplitWhitespace(base.value(0).text());
    std::vector<std::string> title = RandomTitleWords(rng);
    const size_t keep = std::min<size_t>(base_title.size() * 2 / 3, title.size());
    for (size_t i = 0; i < keep; ++i) {
      title[i] = base_title[rng.NextUint64(base_title.size())];
    }
    return Build(std::move(title), rng);
  }

 private:
  std::vector<std::string> RandomTitleWords(Rng& rng) const {
    const size_t len = 5 + rng.NextUint64(5);
    std::vector<std::string> title;
    title.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      title.push_back(W(PickWord(words::PaperTitleWords(), rng)));
    }
    return title;
  }

  Record Build(std::vector<std::string> title, Rng& rng) const {
    const size_t num_authors = 1 + rng.NextUint64(4);
    std::vector<std::string> authors;
    for (size_t i = 0; i < num_authors; ++i) {
      authors.push_back(JoinParts({W(PickWord(words::FirstNames(), rng)),
                                   W(PickWord(words::LastNames(), rng))}));
    }
    const auto venues =
        noisy_venues_ ? words::VenuesNoisy() : words::VenuesCurated();
    return MakeRecordOrDie(
        schema_,
        {Value::Of(JoinParts(title)), Value::Of(Join(authors, " , ")),
         Value::Of(W(PickWord(venues, rng))),
         Value::Of(std::to_string(rng.NextInt(1995, 2010)))});
  }

  bool noisy_venues_;
  std::shared_ptr<const Schema> schema_;
};

// ---------------------------------------------------------------------------
// Products: three schema variants
// ---------------------------------------------------------------------------

enum class ProductVariant { kAmazonGoogle, kWalmartAmazon, kAbtBuy };

class ProductGenerator : public EntityGenerator {
 public:
  explicit ProductGenerator(ProductVariant variant)
      : variant_(variant), schema_(SchemaFor(variant)) {}

  const std::shared_ptr<const Schema>& schema() const override {
    return schema_;
  }

  Record Generate(Rng& rng) const override {
    return Build(W(PickWord(words::ProductBrands(), rng)),
                 W(PickWord(words::ProductNouns(), rng)), rng);
  }

  Record GenerateSibling(const Record& base, Rng& rng) const override {
    // Same product category from a competitor, or another product of the
    // same brand — both yield Figure-1-style hard negatives.
    const std::string base_title = base.value(0).text();
    std::vector<std::string> tokens = SplitWhitespace(base_title);
    const std::string base_brand = tokens.empty() ? "acme" : tokens[0];
    std::string noun = W(PickWord(words::ProductNouns(), rng));
    for (const auto& t : tokens) {
      // Reuse the base noun when we can spot it, so siblings collide on it.
      for (std::string_view candidate : words::ProductNouns()) {
        if (t == candidate) {
          noun = t;
          break;
        }
      }
    }
    const bool same_brand = rng.NextBernoulli(0.75);
    const std::string brand =
        same_brand ? base_brand : W(PickWord(words::ProductBrands(), rng));
    return Build(brand, noun, rng);
  }

 private:
  static std::shared_ptr<const Schema> SchemaFor(ProductVariant variant) {
    switch (variant) {
      case ProductVariant::kAmazonGoogle:
        return MakeSchemaOrDie({"title", "manufacturer", "price"});
      case ProductVariant::kWalmartAmazon:
        return MakeSchemaOrDie(
            {"title", "category", "brand", "modelno", "price"});
      case ProductVariant::kAbtBuy:
        return MakeSchemaOrDie({"name", "description", "price"});
    }
    LANDMARK_CHECK_MSG(false, "unknown product variant");
    return nullptr;
  }

  Record Build(const std::string& brand, const std::string& noun,
               Rng& rng) const {
    const std::string model = RandomModelNumber(rng);
    const std::string adj1 = W(PickWord(words::ProductAdjectives(), rng));
    const std::string adj2 = W(PickWord(words::ProductAdjectives(), rng));
    const double price = 5.0 + rng.NextDouble() * 1500.0;
    const std::string price_str = FormatDouble(price, 2);

    switch (variant_) {
      case ProductVariant::kAmazonGoogle: {
        const std::string title = JoinParts({brand, adj1, noun, model});
        const std::string manufacturer =
            rng.NextBernoulli(0.3) ? brand + " inc." : brand;
        return MakeRecordOrDie(schema_, {Value::Of(title),
                                         Value::Of(manufacturer),
                                         Value::Of(price_str)});
      }
      case ProductVariant::kWalmartAmazon: {
        const std::string title = JoinParts({brand, adj1, adj2, noun, model});
        return MakeRecordOrDie(
            schema_,
            {Value::Of(title),
             Value::Of(W(PickWord(words::ProductCategories(), rng))),
             Value::Of(brand), Value::Of(model), Value::Of(price_str)});
      }
      case ProductVariant::kAbtBuy: {
        const std::string name = JoinParts({brand, adj1, noun, model});
        // Long free-text description, Abt-Buy style.
        std::vector<std::string> desc = {brand, adj1, noun, "with", adj2,
                                         W(PickWord(words::ProductNouns(), rng)),
                                         model};
        const size_t extra = 3 + rng.NextUint64(8);
        for (size_t i = 0; i < extra; ++i) {
          if (rng.NextBernoulli(0.3)) {
            desc.push_back(FormatDouble(1.0 + rng.NextDouble() * 99.0, 1));
            desc.push_back(W(PickWord(words::SpecUnits(), rng)));
          } else {
            desc.push_back(W(PickWord(words::ProductAdjectives(), rng)));
          }
        }
        return MakeRecordOrDie(schema_,
                               {Value::Of(name), Value::Of(JoinParts(desc)),
                                Value::Of(price_str)});
      }
    }
    LANDMARK_CHECK_MSG(false, "unknown product variant");
    return Record::Empty(schema_);
  }

  ProductVariant variant_;
  std::shared_ptr<const Schema> schema_;
};

}  // namespace

std::string RandomModelNumber(Rng& rng) {
  std::string out;
  const size_t letters = 2 + rng.NextUint64(4);
  for (size_t i = 0; i < letters; ++i) {
    out += static_cast<char>('a' + rng.NextUint64(26));
  }
  const size_t digits = 2 + rng.NextUint64(3);
  for (size_t i = 0; i < digits; ++i) {
    out += static_cast<char>('0' + rng.NextUint64(10));
  }
  if (rng.NextBernoulli(0.4)) {
    out += static_cast<char>('a' + rng.NextUint64(26));
  }
  return out;
}

std::unique_ptr<EntityGenerator> MakeEntityGenerator(MagellanDomain domain) {
  switch (domain) {
    case MagellanDomain::kBeer:
      return std::make_unique<BeerGenerator>();
    case MagellanDomain::kMusic:
      return std::make_unique<MusicGenerator>();
    case MagellanDomain::kRestaurant:
      return std::make_unique<RestaurantGenerator>();
    case MagellanDomain::kCitationClean:
      return std::make_unique<CitationGenerator>(/*noisy_venues=*/false);
    case MagellanDomain::kCitationNoisy:
      return std::make_unique<CitationGenerator>(/*noisy_venues=*/true);
    case MagellanDomain::kProductAmazonGoogle:
      return std::make_unique<ProductGenerator>(ProductVariant::kAmazonGoogle);
    case MagellanDomain::kProductWalmartAmazon:
      return std::make_unique<ProductGenerator>(
          ProductVariant::kWalmartAmazon);
    case MagellanDomain::kProductAbtBuy:
      return std::make_unique<ProductGenerator>(ProductVariant::kAbtBuy);
  }
  LANDMARK_CHECK_MSG(false, "unknown domain");
  return nullptr;
}

}  // namespace landmark
