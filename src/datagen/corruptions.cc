#include "datagen/corruptions.h"

#include <algorithm>

#include "text/tokenize.h"
#include "util/check.h"
#include "util/string_util.h"

namespace landmark {

std::string ApplyTypo(const std::string& token, Rng& rng) {
  if (token.size() < 2) return token;
  std::string out = token;
  const size_t kind = rng.NextUint64(4);
  const size_t pos = rng.NextUint64(out.size());
  switch (kind) {
    case 0: {  // swap adjacent characters
      const size_t p = std::min(pos, out.size() - 2);
      std::swap(out[p], out[p + 1]);
      break;
    }
    case 1:  // drop a character
      out.erase(pos, 1);
      break;
    case 2:  // duplicate a character
      out.insert(out.begin() + pos, out[pos]);
      break;
    default: {  // substitute with a nearby lowercase letter
      const char c = static_cast<char>('a' + rng.NextUint64(26));
      out[pos] = c;
      break;
    }
  }
  return out;
}

std::string Abbreviate(const std::string& token) {
  if (token.size() < 3) return token;
  return std::string(1, token[0]) + ".";
}

Value CorruptValue(const Value& value, const CorruptionOptions& options,
                   Rng& rng) {
  if (value.is_null()) return value;
  if (rng.NextBernoulli(options.null_prob)) return Value::Null();

  // Numeric values get relative jitter or a reformat instead of text edits.
  if (auto num = value.AsDouble(); num.has_value()) {
    double v = *num;
    if (rng.NextBernoulli(options.numeric_jitter_prob)) {
      v *= 1.0 + rng.NextDouble(-0.02, 0.02);
    }
    return Value::OfNumber(v);
  }

  std::vector<std::string> tokens = WordTokens(value.text());
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& token : tokens) {
    if (tokens.size() > 1 && rng.NextBernoulli(options.drop_prob)) continue;
    if (rng.NextBernoulli(options.abbreviate_prob)) {
      out.push_back(Abbreviate(token));
    } else if (rng.NextBernoulli(options.typo_prob)) {
      out.push_back(ApplyTypo(token, rng));
    } else {
      out.push_back(std::move(token));
    }
  }
  if (out.empty()) {
    // Never corrupt a value into emptiness; keep one original token.
    out.push_back(tokens[rng.NextUint64(tokens.size())]);
  }
  if (out.size() >= 2 && rng.NextBernoulli(options.swap_prob)) {
    const size_t p = rng.NextUint64(out.size() - 1);
    std::swap(out[p], out[p + 1]);
  }
  return Value::Of(Join(out, " "));
}

Record CorruptEntity(const Record& entity, const CorruptionOptions& options,
                     Rng& rng) {
  Record out = entity;
  for (size_t a = 0; a < entity.num_attributes(); ++a) {
    out.SetValue(a, CorruptValue(entity.value(a), options, rng));
  }
  return out;
}

void MakeDirtyPair(PairRecord& pair, double move_prob, size_t target_attr,
                   Rng& rng) {
  for (EntitySide side : {EntitySide::kLeft, EntitySide::kRight}) {
    Record& entity = pair.entity(side);
    LANDMARK_CHECK(target_attr < entity.num_attributes());
    for (size_t a = 0; a < entity.num_attributes(); ++a) {
      if (a == target_attr) continue;
      if (entity.value(a).is_null()) continue;
      if (!rng.NextBernoulli(move_prob)) continue;
      const std::string moved = entity.value(a).text();
      const Value& target = entity.value(target_attr);
      const std::string combined =
          target.is_null() ? moved : target.text() + " " + moved;
      entity.SetValue(target_attr, Value::Of(combined));
      entity.SetValue(a, Value::Null());
    }
  }
}

}  // namespace landmark
