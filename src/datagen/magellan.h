#ifndef LANDMARK_DATAGEN_MAGELLAN_H_
#define LANDMARK_DATAGEN_MAGELLAN_H_

#include <string>
#include <vector>

#include "data/em_dataset.h"
#include "datagen/domains.h"
#include "util/result.h"

namespace landmark {

/// \brief One row of the paper's Table 1: a benchmark dataset to generate.
struct MagellanDatasetSpec {
  std::string code;         // "S-BR", "D-WA", ...
  std::string source_name;  // "BeerAdvo-RateBeer"
  std::string type;         // "Structured" | "Textual" | "Dirty"
  MagellanDomain domain;
  size_t size;              // number of pairs
  double match_percent;     // 100 * matches / size
  bool dirty;               // apply the Magellan dirty transformation
  uint64_t seed;            // generation seed (deterministic output)
};

/// The 12 datasets of the paper's Table 1 with the published sizes and
/// match rates.
const std::vector<MagellanDatasetSpec>& MagellanBenchmark();

/// Looks a spec up by its code ("S-DA"); NotFound when absent.
Result<MagellanDatasetSpec> FindMagellanSpec(const std::string& code);

/// \brief Options controlling the synthetic pair construction.
struct MagellanGenOptions {
  /// Multiplies the spec size (0.1 generates a 10% subsample-scale dataset
  /// for fast tests; match rate is preserved).
  double size_scale = 1.0;
  /// Fraction of non-matching pairs built from domain siblings (hard
  /// negatives); the remainder pairs two unrelated entities.
  double hard_negative_fraction = 0.9;
  /// Probability that the dirty transform moves an attribute value into the
  /// primary attribute (per attribute, per side).
  double dirty_move_prob = 0.5;
};

/// Generates the dataset described by `spec`. Deterministic in spec.seed.
Result<EmDataset> GenerateMagellanDataset(const MagellanDatasetSpec& spec,
                                          const MagellanGenOptions& options = {});

}  // namespace landmark

#endif  // LANDMARK_DATAGEN_MAGELLAN_H_
