#ifndef LANDMARK_DATAGEN_DOMAINS_H_
#define LANDMARK_DATAGEN_DOMAINS_H_

#include <memory>
#include <string>

#include "data/record.h"
#include "data/schema.h"
#include "util/rng.h"

namespace landmark {

/// \brief Generates synthetic entities of one benchmark domain.
///
/// Each generator owns the entity schema of its domain (the schema of the
/// corresponding real Magellan dataset) and can produce:
///  - fresh random entities (`Generate`),
///  - *siblings* of an entity (`GenerateSibling`): a different real-world
///    entity that shares context with the base one (same brand, same artist,
///    overlapping title words...). Siblings become the hard non-matching
///    pairs that make the benchmark non-trivial — e.g. Figure 1's
///    "sony digital camera" vs "nikon digital camera leather case".
class EntityGenerator {
 public:
  virtual ~EntityGenerator() = default;

  virtual const std::shared_ptr<const Schema>& schema() const = 0;

  /// Generates a fresh entity.
  virtual Record Generate(Rng& rng) const = 0;

  /// Generates a different entity that shares context with `base`.
  virtual Record GenerateSibling(const Record& base, Rng& rng) const = 0;
};

/// The five entity domains behind the 12 benchmark datasets.
enum class MagellanDomain {
  kBeer,                  // BeerAdvo-RateBeer
  kMusic,                 // iTunes-Amazon
  kRestaurant,            // Fodors-Zagats
  kCitationClean,         // DBLP-ACM (small, curated venue strings)
  kCitationNoisy,         // DBLP-GoogleScholar (large, messy venue strings)
  kProductAmazonGoogle,   // Amazon-Google (title, manufacturer, price)
  kProductWalmartAmazon,  // Walmart-Amazon (title, category, brand, modelno, price)
  kProductAbtBuy,         // Abt-Buy (name, long description, price)
};

/// Factory for domain generators.
std::unique_ptr<EntityGenerator> MakeEntityGenerator(MagellanDomain domain);

/// Random alphanumeric model number like "dslra200w" or "kx-tg6512b".
std::string RandomModelNumber(Rng& rng);

}  // namespace landmark

#endif  // LANDMARK_DATAGEN_DOMAINS_H_
