#include "datagen/magellan.h"

#include <algorithm>
#include <cmath>

#include "datagen/corruptions.h"

namespace landmark {

const std::vector<MagellanDatasetSpec>& MagellanBenchmark() {
  static const auto& specs = *new std::vector<MagellanDatasetSpec>{
      {"S-BR", "BeerAdvo-RateBeer", "Structured", MagellanDomain::kBeer, 450,
       15.11, false, 101},
      {"S-IA", "iTunes-Amazon", "Structured", MagellanDomain::kMusic, 539,
       24.49, false, 102},
      {"S-FZ", "Fodors-Zagats", "Structured", MagellanDomain::kRestaurant, 946,
       11.63, false, 103},
      {"S-DA", "DBLP-ACM", "Structured", MagellanDomain::kCitationClean, 12363,
       17.96, false, 104},
      {"S-DG", "DBLP-GoogleScholar", "Structured",
       MagellanDomain::kCitationNoisy, 28707, 18.63, false, 105},
      {"S-AG", "Amazon-Google", "Structured",
       MagellanDomain::kProductAmazonGoogle, 11460, 10.18, false, 106},
      {"S-WA", "Walmart-Amazon", "Structured",
       MagellanDomain::kProductWalmartAmazon, 10242, 9.39, false, 107},
      {"T-AB", "Abt-Buy", "Textual", MagellanDomain::kProductAbtBuy, 9575,
       10.74, false, 108},
      {"D-IA", "iTunes-Amazon", "Dirty", MagellanDomain::kMusic, 539, 24.49,
       true, 109},
      {"D-DA", "DBLP-ACM", "Dirty", MagellanDomain::kCitationClean, 12363,
       17.96, true, 110},
      {"D-DG", "DBLP-GoogleScholar", "Dirty", MagellanDomain::kCitationNoisy,
       28707, 18.63, true, 111},
      {"D-WA", "Walmart-Amazon", "Dirty", MagellanDomain::kProductWalmartAmazon,
       10242, 9.39, true, 112},
  };
  return specs;
}

Result<MagellanDatasetSpec> FindMagellanSpec(const std::string& code) {
  for (const auto& spec : MagellanBenchmark()) {
    if (spec.code == code) return spec;
  }
  return Status::NotFound("no Magellan dataset with code: " + code);
}

namespace {

/// The "cleaner" source's corruption (left entities): mild.
CorruptionOptions LeftCorruption() {
  CorruptionOptions opts;
  opts.typo_prob = 0.01;
  opts.drop_prob = 0.03;
  opts.abbreviate_prob = 0.01;
  opts.swap_prob = 0.02;
  opts.numeric_jitter_prob = 0.05;
  opts.null_prob = 0.01;
  return opts;
}

/// The "messier" source's corruption (right entities): the defaults.
CorruptionOptions RightCorruption() { return CorruptionOptions{}; }

}  // namespace

Result<EmDataset> GenerateMagellanDataset(const MagellanDatasetSpec& spec,
                                          const MagellanGenOptions& options) {
  if (options.size_scale <= 0.0) {
    return Status::InvalidArgument("size_scale must be > 0");
  }
  const size_t size = std::max<size_t>(
      4, static_cast<size_t>(std::lround(spec.size * options.size_scale)));
  const size_t num_match = std::max<size_t>(
      2,
      static_cast<size_t>(std::lround(size * spec.match_percent / 100.0)));
  if (num_match >= size) {
    return Status::InvalidArgument("match percent leaves no non-matches");
  }
  const size_t num_non_match = size - num_match;

  Rng rng(spec.seed);
  std::unique_ptr<EntityGenerator> gen = MakeEntityGenerator(spec.domain);
  EmDataset dataset(spec.code, gen->schema());

  const CorruptionOptions left_corruption = LeftCorruption();
  const CorruptionOptions right_corruption = RightCorruption();
  std::vector<PairRecord> pairs;
  pairs.reserve(size);

  // Matching pairs: two independently corrupted descriptions of one entity.
  for (size_t i = 0; i < num_match; ++i) {
    Record base = gen->Generate(rng);
    PairRecord pair;
    pair.left = CorruptEntity(base, left_corruption, rng);
    pair.right = CorruptEntity(base, right_corruption, rng);
    pair.label = MatchLabel::kMatch;
    pairs.push_back(std::move(pair));
  }

  // Non-matching pairs: hard negatives (siblings) and random negatives.
  for (size_t i = 0; i < num_non_match; ++i) {
    Record base = gen->Generate(rng);
    Record other = rng.NextBernoulli(options.hard_negative_fraction)
                       ? gen->GenerateSibling(base, rng)
                       : gen->Generate(rng);
    PairRecord pair;
    pair.left = CorruptEntity(base, left_corruption, rng);
    pair.right = CorruptEntity(other, right_corruption, rng);
    pair.label = MatchLabel::kNonMatch;
    pairs.push_back(std::move(pair));
  }

  if (spec.dirty) {
    for (auto& pair : pairs) {
      MakeDirtyPair(pair, options.dirty_move_prob, /*target_attr=*/0, rng);
    }
  }

  rng.Shuffle(pairs);
  for (size_t i = 0; i < pairs.size(); ++i) {
    pairs[i].id = static_cast<int64_t>(i);
    LANDMARK_RETURN_NOT_OK(dataset.Append(std::move(pairs[i])));
  }
  return dataset;
}

}  // namespace landmark
