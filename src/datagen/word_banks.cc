#include "datagen/word_banks.h"

namespace landmark {
namespace words {

namespace {

constexpr std::string_view kFirstNames[] = {
    "james",  "mary",    "john",    "patricia", "robert", "jennifer",
    "michael", "linda",  "william", "elizabeth", "david", "barbara",
    "richard", "susan",  "joseph",  "jessica",  "thomas", "sarah",
    "charles", "karen",  "daniel",  "nancy",    "matthew", "lisa",
    "anthony", "betty",  "mark",    "margaret", "donald", "sandra",
    "steven",  "ashley", "paul",    "kimberly", "andrew", "emily",
    "joshua",  "donna",  "kenneth", "michelle", "kevin",  "dorothy",
    "brian",   "carol",  "george",  "amanda",   "edward", "melissa",
    "ronald",  "deborah", "timothy", "stephanie", "jason", "rebecca",
    "jeffrey", "sharon", "ryan",    "laura",    "jacob",  "cynthia",
};

constexpr std::string_view kLastNames[] = {
    "smith",    "johnson",  "williams", "brown",    "jones",    "garcia",
    "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson",   "anderson", "thomas",   "taylor",   "moore",
    "jackson",  "martin",   "lee",      "perez",    "thompson", "white",
    "harris",   "sanchez",  "clark",    "ramirez",  "lewis",    "robinson",
    "walker",   "young",    "allen",    "king",     "wright",   "scott",
    "torres",   "nguyen",   "hill",     "flores",   "green",    "adams",
    "nelson",   "baker",    "hall",     "rivera",   "campbell", "mitchell",
    "carter",   "roberts",  "gomez",    "phillips", "evans",    "turner",
    "diaz",     "parker",   "cruz",     "edwards",  "collins",  "reyes",
    "stewart",  "morris",   "morales",  "murphy",   "cook",     "rogers",
    "gutierrez", "ortiz",   "morgan",   "cooper",   "peterson", "bailey",
    "reed",     "kelly",    "howard",   "ramos",    "kim",      "cox",
    "ward",     "richardson",
};

constexpr std::string_view kProductBrands[] = {
    "sony",     "nikon",   "canon",    "panasonic", "samsung",  "lg",
    "hp",       "dell",    "apple",    "epson",     "toshiba",  "olympus",
    "fujifilm", "garmin",  "logitech", "belkin",    "netgear",  "kodak",
    "sandisk",  "lexmark", "brother",  "asus",      "acer",     "lenovo",
    "philips",  "sharp",   "jvc",      "pioneer",   "yamaha",   "bose",
    "kenwood",  "casio",   "motorola", "nokia",     "blackberry", "vtech",
    "tomtom",   "magellan", "polaroid", "sylvania",
};

constexpr std::string_view kProductNouns[] = {
    "camera",    "laptop",    "printer",   "monitor",   "keyboard",
    "router",    "speaker",   "headphones", "case",     "charger",
    "cable",     "adapter",   "lens",      "tripod",    "drive",
    "player",    "television", "projector", "scanner",  "notebook",
    "tablet",    "phone",     "camcorder", "receiver",  "subwoofer",
    "microphone", "webcam",   "mouse",     "dock",      "battery",
    "memory",    "card",      "flash",     "toner",     "cartridge",
    "binoculars", "telescope", "radio",    "turntable", "amplifier",
};

constexpr std::string_view kProductAdjectives[] = {
    "digital",     "wireless", "portable", "compact",  "professional",
    "ultra",       "premium",  "slim",     "black",    "silver",
    "white",       "red",      "blue",     "leather",  "rechargeable",
    "bluetooth",   "optical",  "hd",       "stereo",   "waterproof",
    "lightweight", "heavy-duty", "universal", "deluxe", "mini",
    "wide-angle",  "high-speed", "dual",   "smart",    "classic",
};

constexpr std::string_view kProductCategories[] = {
    "electronics",       "computers",        "cameras and photo",
    "office products",   "home audio",       "tv and video",
    "cell phones",       "accessories",      "printers and supplies",
    "networking",        "car electronics",  "portable audio",
    "video games",       "wearable technology", "musical instruments",
};

constexpr std::string_view kSpecUnits[] = {
    "megapixels", "inch", "ghz", "gb", "mb", "tb",
    "mah",        "watt", "mm",  "hz", "dpi", "rpm",
};

constexpr std::string_view kBeerStyleWords[] = {
    "american ipa",           "imperial stout",   "pale ale",
    "amber ale",              "wheat beer",       "pilsner",
    "porter",                 "saison",           "lager",
    "brown ale",              "double ipa",       "hefeweizen",
    "belgian tripel",         "barleywine",       "kolsch",
    "scotch ale",             "oatmeal stout",    "fruit beer",
    "english bitter",         "dunkel",           "bock",
    "witbier",                "red ale",          "cream ale",
};

constexpr std::string_view kBeerNameWords[] = {
    "hoppy",    "golden",  "midnight", "old",      "wild",    "crooked",
    "raging",   "lazy",    "burning",  "frozen",   "red",     "black",
    "white",    "copper",  "iron",     "stone",    "river",   "mountain",
    "valley",   "harbor",  "sunset",   "sunrise",  "winter",  "summer",
    "harvest",  "bourbon", "barrel",   "smoked",   "toasted", "rustic",
    "angry",    "happy",   "grumpy",   "dancing",  "flying",  "howling",
    "roaring",  "silent",  "velvet",   "amber",    "citra",   "cascade",
    "mosaic",   "galaxy",  "nugget",   "centennial",
};

constexpr std::string_view kBrewerySuffixes[] = {
    "brewing company", "brewery",     "brewing co.", "beer company",
    "brewhouse",       "craft brewery", "brewworks", "ales",
    "brewing",         "beer works",
};

constexpr std::string_view kSongWords[] = {
    "love",   "night",   "heart",  "dance",   "fire",    "dream",
    "light",  "shadow",  "rain",   "summer",  "midnight", "forever",
    "crazy",  "beautiful", "broken", "golden", "wild",    "home",
    "road",   "river",   "sky",    "star",    "moon",    "sun",
    "ghost",  "angel",   "devil",  "heaven",  "paradise", "storm",
    "thunder", "lightning", "echo", "whisper", "scream",  "silence",
    "memory", "yesterday", "tomorrow", "tonight", "alive", "young",
    "fever",  "gravity", "horizon", "ocean",   "desert",  "city",
};

constexpr std::string_view kGenres[] = {
    "pop",        "rock",      "hip-hop/rap", "country", "r&b/soul",
    "electronic", "jazz",      "classical",   "reggae",  "blues",
    "folk",       "latin",     "alternative", "dance",   "indie",
    "metal",      "soundtrack", "gospel",     "punk",    "world",
};

constexpr std::string_view kAlbumWords[] = {
    "greatest hits", "deluxe edition", "live",       "unplugged",
    "acoustic",      "sessions",       "chronicles", "anthology",
    "revival",       "origins",        "reflections", "horizons",
    "escape",        "gravity",        "momentum",   "wanderlust",
    "afterglow",     "daybreak",       "nightfall",  "resonance",
};

constexpr std::string_view kRestaurantNameWords[] = {
    "golden",   "royal",   "little",  "blue",     "green",   "grand",
    "old",      "new",     "corner",  "garden",   "palace",  "dragon",
    "lotus",    "olive",   "cedar",   "maple",    "harbor",  "sunset",
    "village",  "union",   "central", "riverside", "uptown", "downtown",
    "silver",   "copper",  "ivory",   "jade",     "ruby",    "pearl",
};

constexpr std::string_view kRestaurantNouns[] = {
    "cafe",     "grill",   "bistro",  "house",    "kitchen", "tavern",
    "diner",    "eatery",  "cantina", "trattoria", "brasserie", "pizzeria",
    "steakhouse", "chophouse", "noodle bar", "tea room", "oyster bar",
    "bakery",   "deli",    "buffet",
};

constexpr std::string_view kCuisineTypes[] = {
    "italian",  "french",   "chinese",  "japanese", "mexican",
    "thai",     "indian",   "american", "mediterranean", "greek",
    "spanish",  "korean",   "vietnamese", "seafood", "steakhouses",
    "barbecue", "vegetarian", "cajun",  "continental", "fusion",
};

constexpr std::string_view kStreetNames[] = {
    "main st.",      "oak ave.",      "park blvd.",    "broadway",
    "sunset blvd.",  "melrose ave.",  "wilshire blvd.", "fifth ave.",
    "lexington ave.", "madison ave.", "market st.",    "mission st.",
    "valencia st.",  "king st.",      "queen st.",     "elm st.",
    "pine st.",      "cedar rd.",     "lake shore dr.", "ocean dr.",
    "canal st.",     "bleecker st.",  "mulberry st.",  "spring st.",
};

constexpr std::string_view kCities[] = {
    "new york",      "los angeles", "chicago",   "san francisco",
    "atlanta",       "boston",      "seattle",   "miami",
    "dallas",        "houston",     "denver",    "philadelphia",
    "new orleans",   "las vegas",   "san diego", "washington dc",
};

constexpr std::string_view kPaperTitleWords[] = {
    "efficient",   "scalable",   "adaptive",     "distributed", "parallel",
    "incremental", "approximate", "optimal",     "dynamic",     "robust",
    "query",       "queries",    "processing",   "optimization", "evaluation",
    "indexing",    "index",      "join",         "aggregation", "clustering",
    "classification", "mining",  "learning",     "matching",    "integration",
    "database",    "databases",  "data",         "knowledge",   "information",
    "stream",      "streams",    "graph",        "graphs",      "tree",
    "spatial",     "temporal",   "relational",   "semistructured", "xml",
    "web",         "semantic",   "schema",       "entity",      "record",
    "similarity",  "nearest",    "neighbor",     "search",      "retrieval",
    "caching",     "storage",    "transaction",  "concurrency", "recovery",
    "warehouse",   "olap",       "views",        "materialized", "sampling",
    "estimation",  "selectivity", "cardinality", "partitioning", "replication",
    "compression", "encryption", "privacy",      "security",    "provenance",
};

constexpr std::string_view kVenuesCurated[] = {
    "sigmod conference",
    "vldb",
    "sigmod record",
    "acm trans. database syst.",
    "vldb j.",
};

constexpr std::string_view kVenuesNoisy[] = {
    "sigmod conference",
    "proceedings of the acm sigmod international conference on management of data",
    "vldb",
    "proceedings of the international conference on very large data bases",
    "sigmod record",
    "acm sigmod record",
    "acm trans. database syst.",
    "acm transactions on database systems",
    "vldb j.",
    "the vldb journal",
    "icde",
    "international conference on data engineering",
    "kdd",
    "pods",
    "edbt",
    "cikm",
    "www",
    "ieee trans. knowl. data eng.",
};

}  // namespace

#define LANDMARK_BANK(fn, array)                        \
  std::span<const std::string_view> fn() {              \
    return std::span<const std::string_view>(array);    \
  }

LANDMARK_BANK(FirstNames, kFirstNames)
LANDMARK_BANK(LastNames, kLastNames)
LANDMARK_BANK(ProductBrands, kProductBrands)
LANDMARK_BANK(ProductNouns, kProductNouns)
LANDMARK_BANK(ProductAdjectives, kProductAdjectives)
LANDMARK_BANK(ProductCategories, kProductCategories)
LANDMARK_BANK(SpecUnits, kSpecUnits)
LANDMARK_BANK(BeerStyleWords, kBeerStyleWords)
LANDMARK_BANK(BeerNameWords, kBeerNameWords)
LANDMARK_BANK(BrewerySuffixes, kBrewerySuffixes)
LANDMARK_BANK(SongWords, kSongWords)
LANDMARK_BANK(Genres, kGenres)
LANDMARK_BANK(AlbumWords, kAlbumWords)
LANDMARK_BANK(CuisineTypes, kCuisineTypes)
LANDMARK_BANK(StreetNames, kStreetNames)
LANDMARK_BANK(Cities, kCities)
LANDMARK_BANK(PaperTitleWords, kPaperTitleWords)
LANDMARK_BANK(VenuesCurated, kVenuesCurated)
LANDMARK_BANK(VenuesNoisy, kVenuesNoisy)

std::span<const std::string_view> RestaurantNameWords() {
  return std::span<const std::string_view>(kRestaurantNameWords);
}

/// Exposed through RestaurantNameWords/PickWord pairs; nouns are separate so
/// names read "<word> <word> <noun>".
std::span<const std::string_view> RestaurantNouns() {
  return std::span<const std::string_view>(kRestaurantNouns);
}

#undef LANDMARK_BANK

}  // namespace words

std::string_view PickWord(std::span<const std::string_view> pool, Rng& rng) {
  LANDMARK_CHECK(!pool.empty());
  return pool[rng.NextUint64(pool.size())];
}

}  // namespace landmark
