#ifndef LANDMARK_DATAGEN_WORD_BANKS_H_
#define LANDMARK_DATAGEN_WORD_BANKS_H_

#include <span>
#include <string_view>

#include "util/rng.h"

namespace landmark {

/// Vocabulary pools the synthetic Magellan-style generators draw from.
/// All words are lowercase, matching the preprocessed Magellan benchmark
/// data the paper evaluates on.
namespace words {

std::span<const std::string_view> FirstNames();
std::span<const std::string_view> LastNames();

// Electronics / retail products (Amazon-Google, Walmart-Amazon, Abt-Buy).
std::span<const std::string_view> ProductBrands();
std::span<const std::string_view> ProductNouns();
std::span<const std::string_view> ProductAdjectives();
std::span<const std::string_view> ProductCategories();
std::span<const std::string_view> SpecUnits();

// Beer (BeerAdvo-RateBeer).
std::span<const std::string_view> BeerStyleWords();
std::span<const std::string_view> BeerNameWords();
std::span<const std::string_view> BrewerySuffixes();

// Music (iTunes-Amazon).
std::span<const std::string_view> SongWords();
std::span<const std::string_view> Genres();
std::span<const std::string_view> AlbumWords();

// Restaurants (Fodors-Zagats).
std::span<const std::string_view> RestaurantNameWords();
std::span<const std::string_view> RestaurantNouns();
std::span<const std::string_view> CuisineTypes();
std::span<const std::string_view> StreetNames();
std::span<const std::string_view> Cities();

// Bibliographic (DBLP-ACM, DBLP-GoogleScholar).
std::span<const std::string_view> PaperTitleWords();
std::span<const std::string_view> VenuesCurated();   // small, clean pool (ACM side)
std::span<const std::string_view> VenuesNoisy();     // larger, messier pool (GoogleScholar side)

}  // namespace words

/// Returns a uniformly random element of `pool`.
std::string_view PickWord(std::span<const std::string_view> pool, Rng& rng);

}  // namespace landmark

#endif  // LANDMARK_DATAGEN_WORD_BANKS_H_
