#ifndef LANDMARK_DATAGEN_CORRUPTIONS_H_
#define LANDMARK_DATAGEN_CORRUPTIONS_H_

#include <string>

#include "data/pair_record.h"
#include "data/record.h"
#include "util/rng.h"

namespace landmark {

/// \brief Per-token corruption probabilities applied when deriving the
/// second description of a matching entity pair.
///
/// These are the imperfections real EM benchmarks exhibit between the two
/// sources (BeerAdvocate vs RateBeer, DBLP vs Google Scholar, ...): typos,
/// dropped words, reordered words, abbreviations, slightly different
/// numbers.
struct CorruptionOptions {
  double typo_prob = 0.12;        // per token: one character edit
  double drop_prob = 0.28;        // per token: removed entirely
  double abbreviate_prob = 0.05;  // per token: "john" -> "j."
  double swap_prob = 0.05;        // per value: two adjacent tokens swapped
  double numeric_jitter_prob = 0.3;  // per numeric value: small relative noise
  double null_prob = 0.05;        // per value: becomes missing
};

/// Applies one random character-level edit (swap / drop / duplicate /
/// substitute). Single-character tokens are returned unchanged.
std::string ApplyTypo(const std::string& token, Rng& rng);

/// "john" -> "j." ; tokens shorter than 3 characters are unchanged.
std::string Abbreviate(const std::string& token);

/// Corrupts one attribute value token-by-token per `options`.
Value CorruptValue(const Value& value, const CorruptionOptions& options,
                   Rng& rng);

/// Corrupts every attribute of `entity`.
Record CorruptEntity(const Record& entity, const CorruptionOptions& options,
                     Rng& rng);

/// \brief The Magellan "dirty" transformation: with probability `move_prob`,
/// the value of a non-primary attribute is moved (appended) into the primary
/// attribute `target_attr` of the same entity, leaving the source attribute
/// null. Applied independently to both sides of the pair. This is how the
/// dirty variants (D-IA, D-DA, D-DG, D-WA) were derived from the structured
/// datasets in the DeepMatcher benchmark.
void MakeDirtyPair(PairRecord& pair, double move_prob, size_t target_attr,
                   Rng& rng);

}  // namespace landmark

#endif  // LANDMARK_DATAGEN_CORRUPTIONS_H_
