// landmark_cli — command-line front end for the Landmark Explanation
// library.
//
// Subcommands:
//   generate        write a synthetic Magellan benchmark dataset as CSV
//   train-eval      train an EM model and print its quality report
//   explain         explain one record with a chosen technique
//   counterfactual  find the minimal token removal that flips a decision
//   summary         global explanation summary over a record sample
//   evaluate        run the paper's three protocols on one dataset
//   telemetry-demo  run a small explain batch and print the metrics table
//
// Every command also accepts --metrics-out=FILE (metrics-registry snapshot
// as JSON), --trace-out=FILE (Chrome/Perfetto trace of the run),
// --audit-out=FILE (per-explanation flight recorder), --profile-out=FILE
// (folded-stack sampling profile), --metrics-port=N (live Prometheus
// /metrics endpoint plus /statusz flight deck on 127.0.0.1),
// --timeline-out=FILE (windowed time-series JSONL) and --slo=SPEC
// (burn-rate SLO policies on /sloz).
//
// Examples:
//   landmark_cli generate --dataset S-AG --output sag.csv
//   landmark_cli explain --dataset S-BR --pair 7 --technique double
//   landmark_cli explain --input my_pairs.csv --pair 0 --model forest
//   landmark_cli evaluate --dataset S-IA --records 50
//   landmark_cli telemetry-demo --trace-out=t.json --metrics-out=m.json

#include <algorithm>
#include <iostream>

#include "core/counterfactual.h"
#include "core/engine/explainer_engine.h"
#include "core/landmark_explanation.h"
#include "core/summarizer.h"
#include "datagen/magellan.h"
#include "em/forest_em_model.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry/telemetry.h"

namespace landmark_cli {

using namespace landmark;  // NOLINT: binary-local

constexpr char kUsage[] = R"(usage: landmark_cli <command> [flags]

commands:
  generate        --dataset CODE --output FILE [--scale F]
  train-eval      (--dataset CODE | --input FILE) [--model logreg|forest]
  explain         (--dataset CODE | --input FILE) --pair N
                  [--technique single|double|auto|lime|copy|anchor] [--top K]
                  [--model logreg|forest] [--samples N] [--no-simd]
  counterfactual  (--dataset CODE | --input FILE) --pair N [--model ...]
  summary         (--dataset CODE | --input FILE) [--records N] [--top K]
  evaluate        --dataset CODE [--records N] [--samples N] [--scale F]
                  [--threads N] [--no-predict-cache] [--no-feature-cache]
                  [--no-task-graph] [--no-simd] [--stall-threshold S]
                  [--engine-stats]
  telemetry-demo  [--dataset CODE] [--records N] [--threads N]
                  [--no-simd] [--stall-threshold S]

every command also accepts:
  --metrics-out FILE   write the metrics-registry snapshot as JSON
  --trace-out FILE     record and write a Chrome/Perfetto trace
  --audit-out FILE     per-explanation flight-recorder JSON lines
                       (evaluate / telemetry-demo)
  --profile-out FILE   sample worker activity, write folded flamegraph
                       stacks ("engine/query;model/query COUNT")
  --metrics-port N     serve live /metrics, /healthz, /statusz,
                       /statusz?format=json, /profilez?seconds=N,
                       /timelinez, /sloz on 127.0.0.1:N (0 = ephemeral;
                       port printed on stdout)
  --metrics-linger S   keep the exporter up S seconds after the run
  --timeline-out FILE  windowed time-series deltas as JSON lines (arms the
                       1 s snapshot collector; see also /timelinez)
  --timeline-period S  collector period in seconds (default 1)
  --slo SPEC           register SLO policies, ';'-separated
                       NAME=METRIC,pQQ<THRESHOLD,window=SECONDS
                       [,objective=F] — burn rates on /sloz and slo/*

dataset codes: S-BR S-IA S-FZ S-DA S-DG S-AG S-WA T-AB D-IA D-DA D-DG D-WA
)";

/// Loads --input FILE or generates --dataset CODE.
Result<EmDataset> LoadDataset(const Flags& flags) {
  if (flags.Has("input")) {
    return ReadEmDataset(flags.GetString("input", ""), "user-data");
  }
  const std::string code = flags.GetString("dataset", "");
  if (code.empty()) {
    return Status::InvalidArgument("pass --dataset CODE or --input FILE");
  }
  LANDMARK_ASSIGN_OR_RETURN(MagellanDatasetSpec spec, FindMagellanSpec(code));
  MagellanGenOptions gen;
  gen.size_scale = flags.GetDouble("scale", 1.0);
  return GenerateMagellanDataset(spec, gen);
}

/// Trains the model selected by --model (default logreg).
Result<std::unique_ptr<EmModel>> TrainModel(const Flags& flags,
                                            const EmDataset& dataset,
                                            EmModelReport* report) {
  const std::string kind = flags.GetString("model", "logreg");
  if (kind == "logreg") {
    LANDMARK_ASSIGN_OR_RETURN(std::unique_ptr<LogRegEmModel> model,
                              LogRegEmModel::Train(dataset));
    if (report != nullptr) *report = model->report();
    return std::unique_ptr<EmModel>(std::move(model));
  }
  if (kind == "forest") {
    LANDMARK_ASSIGN_OR_RETURN(std::unique_ptr<ForestEmModel> model,
                              ForestEmModel::Train(dataset));
    if (report != nullptr) *report = model->report();
    return std::unique_ptr<EmModel>(std::move(model));
  }
  return Status::InvalidArgument("unknown --model: " + kind +
                                 " (use logreg or forest)");
}

Result<std::unique_ptr<PairExplainer>> MakeExplainer(const Flags& flags) {
  ExplainerOptions options;
  options.num_samples =
      static_cast<size_t>(flags.GetInt("samples", 384));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string technique = flags.GetString("technique", "auto");
  if (technique == "single") {
    return std::unique_ptr<PairExplainer>(
        new LandmarkExplainer(GenerationStrategy::kSingle, options));
  }
  if (technique == "double") {
    return std::unique_ptr<PairExplainer>(
        new LandmarkExplainer(GenerationStrategy::kDouble, options));
  }
  if (technique == "auto") {
    return std::unique_ptr<PairExplainer>(
        new LandmarkExplainer(GenerationStrategy::kAuto, options));
  }
  if (technique == "lime") {
    return std::unique_ptr<PairExplainer>(new LimeExplainer(options));
  }
  if (technique == "copy") {
    return std::unique_ptr<PairExplainer>(new MojitoCopyExplainer(options));
  }
  return Status::InvalidArgument("unknown --technique: " + technique);
}

int CmdGenerate(const Flags& flags) {
  const std::string output = flags.GetString("output", "");
  if (output.empty()) {
    std::cerr << "generate: pass --output FILE\n";
    return 1;
  }
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  Status st = WriteEmDataset(*dataset, output);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  EmDatasetStats stats = dataset->Stats();
  std::cout << "wrote " << stats.size << " pairs ("
            << FormatDouble(stats.match_percent, 2) << "% match) to "
            << output << "\n";
  return 0;
}

int CmdTrainEval(const Flags& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  EmModelReport report;
  auto model = TrainModel(flags, *dataset, &report);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "model: " << (*model)->name() << "\n"
            << "test accuracy:  " << FormatDouble(report.accuracy, 3) << "\n"
            << "test precision: " << FormatDouble(report.precision, 3) << "\n"
            << "test recall:    " << FormatDouble(report.recall, 3) << "\n"
            << "test F1:        " << FormatDouble(report.f1, 3) << "\n";
  auto weights = (*model)->AttributeWeights();
  if (weights.ok()) {
    std::cout << "attribute weights (model-internal):\n";
    const Schema& schema = *dataset->entity_schema();
    for (size_t a = 0; a < weights->size(); ++a) {
      std::cout << "  " << schema.attribute_name(a) << ": "
                << FormatDouble((*weights)[a], 4) << "\n";
    }
  }
  return 0;
}

int CmdExplain(const Flags& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  const size_t pair_index = static_cast<size_t>(flags.GetInt("pair", 0));
  if (pair_index >= dataset->size()) {
    std::cerr << "--pair out of range (dataset has " << dataset->size()
              << " pairs)\n";
    return 1;
  }
  auto model = TrainModel(flags, *dataset, nullptr);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  const PairRecord& pair = dataset->pair(pair_index);
  std::cout << pair.ToString() << "\n"
            << "model p(match) = "
            << FormatDouble((*model)->PredictProba(pair), 4) << "\n\n";
  if (flags.GetString("technique", "auto") == "anchor") {
    AnchorExplainer anchors;
    auto rules = anchors.Explain(**model, pair);
    if (!rules.ok()) {
      std::cerr << rules.status().ToString() << "\n";
      return 1;
    }
    for (const AnchorRule& rule : *rules) {
      std::cout << rule.ToString(*dataset->entity_schema()) << "\n";
    }
    return 0;
  }
  auto explainer = MakeExplainer(flags);
  if (!explainer.ok()) {
    std::cerr << explainer.status().ToString() << "\n";
    return 1;
  }
  EngineOptions engine_options;
  engine_options.simd = !flags.GetBool("no-simd", false);
  ExplainerEngine engine(engine_options);
  auto explanations = engine.ExplainOne(**model, pair, **explainer);
  if (!explanations.ok()) {
    std::cerr << explanations.status().ToString() << "\n";
    return 1;
  }
  const size_t top = static_cast<size_t>(flags.GetInt("top", 10));
  for (const Explanation& exp : *explanations) {
    std::cout << exp.ToString(*dataset->entity_schema(), top) << "\n";
  }
  return 0;
}

int CmdCounterfactual(const Flags& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  const size_t pair_index = static_cast<size_t>(flags.GetInt("pair", 0));
  if (pair_index >= dataset->size()) {
    std::cerr << "--pair out of range\n";
    return 1;
  }
  auto model = TrainModel(flags, *dataset, nullptr);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  auto explainer = MakeExplainer(flags);
  if (!explainer.ok()) {
    std::cerr << explainer.status().ToString() << "\n";
    return 1;
  }
  const PairRecord& pair = dataset->pair(pair_index);
  EngineOptions engine_options;
  engine_options.simd = !flags.GetBool("no-simd", false);
  ExplainerEngine engine(engine_options);
  auto explanations = engine.ExplainOne(**model, pair, **explainer);
  if (!explanations.ok()) {
    std::cerr << explanations.status().ToString() << "\n";
    return 1;
  }
  std::cout << pair.ToString() << "\n\n";
  const Schema& schema = *dataset->entity_schema();
  for (const Explanation& exp : *explanations) {
    auto cf = FindCounterfactual(**model, **explainer, exp, pair);
    if (!cf.ok()) {
      std::cerr << cf.status().ToString() << "\n";
      continue;
    }
    std::cout << exp.explainer_name;
    if (exp.landmark) std::cout << " (landmark=" << EntitySideName(*exp.landmark) << ")";
    std::cout << ": p " << FormatDouble(cf->probability_before, 3) << " -> "
              << FormatDouble(cf->probability_after, 3)
              << (cf->flipped ? "  FLIPPED by removing:" : "  could not flip")
              << "\n";
    if (cf->flipped) {
      for (size_t idx : cf->removed_features) {
        std::cout << "    " << exp.token_weights[idx].token.PrefixedName(schema)
                  << "\n";
      }
    }
  }
  return 0;
}

int CmdSummary(const Flags& flags) {
  auto dataset = LoadDataset(flags);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  auto model = TrainModel(flags, *dataset, nullptr);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  auto explainer = MakeExplainer(flags);
  if (!explainer.ok()) {
    std::cerr << explainer.status().ToString() << "\n";
    return 1;
  }
  const size_t records = static_cast<size_t>(flags.GetInt("records", 40));
  Rng rng(7);
  std::vector<Explanation> all;
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    for (size_t idx : dataset->SampleByLabel(label, records / 2, rng)) {
      auto explanations = (*explainer)->Explain(**model, dataset->pair(idx));
      if (!explanations.ok()) continue;
      for (auto& e : *explanations) all.push_back(std::move(e));
    }
  }
  ExplanationSummary summary = SummarizeExplanations(
      all, dataset->entity_schema()->num_attributes());
  std::cout << summary.ToString(*dataset->entity_schema(),
                                static_cast<size_t>(flags.GetInt("top", 15)));
  return 0;
}

int CmdEvaluate(const Flags& flags, TelemetryScope& telemetry) {
  if (!flags.Has("dataset")) {
    std::cerr << "evaluate: pass --dataset CODE\n";
    return 1;
  }
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = telemetry.audit_sink();
  auto spec = FindMagellanSpec(flags.GetString("dataset", ""));
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  auto context = ExperimentContext::Create(*spec, config);
  if (!context.ok()) {
    std::cerr << context.status().ToString() << "\n";
    return 1;
  }
  std::vector<Technique> techniques = MakeTechniques(config.explainer_options);
  ExplainerEngine engine = config.MakeEngine();
  const bool print_stats = flags.GetBool("engine-stats", false);
  for (MatchLabel label : {MatchLabel::kMatch, MatchLabel::kNonMatch}) {
    std::cout << "\n--- "
              << (label == MatchLabel::kMatch ? "matching" : "non-matching")
              << " records ---\n";
    TablePrinter table({"technique", "token Acc", "token MAE", "w-Kendall",
                        "interest"});
    for (const Technique& technique : techniques) {
      if (technique.non_match_only && label == MatchLabel::kMatch) continue;
      ExplainBatchResult batch =
          ExplainRecords(context->model(), *technique.explainer,
                         context->dataset(), context->sample(label), engine);
      if (print_stats) {
        std::cerr << "[engine] " << technique.label << ": "
                  << batch.stats.ToString() << "\n";
      }
      auto token = EvaluateTokenRemoval(context->model(), *technique.explainer,
                                        context->dataset(), batch.records,
                                        config.token_removal);
      auto attr = EvaluateAttributeCorrelation(
          context->model(), context->dataset(), batch.records);
      auto interest = EvaluateInterest(context->model(), *technique.explainer,
                                       context->dataset(), batch.records,
                                       label, config.interest);
      if (!token.ok() || !attr.ok() || !interest.ok()) {
        std::cerr << "evaluation failed for " << technique.label << "\n";
        return 1;
      }
      table.AddRow(technique.label, {token->accuracy, token->mae,
                                     attr->mean_weighted_tau,
                                     interest->interest});
    }
    table.Print(std::cout);
  }
  if (print_stats) {
    std::cerr << "\n[telemetry] process-lifetime metrics registry:\n";
    TableSink sink(std::cerr);
    sink.Emit(MetricsRegistry::Global().Snapshot());
  }
  return 0;
}

/// Exercises the full pipeline on a small synthetic dataset, then dumps the
/// entire metrics registry as a human table — a one-command tour of every
/// metric the library publishes (and a quick way to produce example
/// --trace-out / --metrics-out files).
int CmdTelemetryDemo(const Flags& flags, TelemetryScope& telemetry) {
  auto spec = FindMagellanSpec(flags.GetString("dataset", "S-FZ"));
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  config.engine_options.audit_sink = telemetry.audit_sink();
  auto context = ExperimentContext::Create(*spec, config);
  if (!context.ok()) {
    std::cerr << context.status().ToString() << "\n";
    return 1;
  }
  const size_t records = static_cast<size_t>(flags.GetInt("records", 16));
  std::vector<size_t> indices;
  for (size_t i = 0; i < std::min(records, context->dataset().size()); ++i) {
    indices.push_back(i);
  }
  LandmarkExplainer explainer(GenerationStrategy::kDouble,
                              config.explainer_options);
  ExplainerEngine engine = config.MakeEngine();
  ExplainBatchResult batch = ExplainRecords(
      context->model(), explainer, context->dataset(), indices, engine);
  std::cout << "explained " << batch.records.size() << " of "
            << indices.size() << " pairs ("
            << batch.stats.ToString() << ")\n\n"
            << "metrics registry after the run:\n";
  TableSink sink(std::cout);
  sink.Emit(MetricsRegistry::Global().Snapshot());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 1;
  }
  const std::string command = argv[1];
  auto flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::cerr << flags.status().ToString() << "\n";
    return 1;
  }
  // Started before the command runs so traces cover the whole run; the
  // destructor writes --metrics-out / --trace-out on every exit path.
  TelemetryScope telemetry = TelemetryScope::FromFlags(*flags);
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "train-eval") return CmdTrainEval(*flags);
  if (command == "explain") return CmdExplain(*flags);
  if (command == "counterfactual") return CmdCounterfactual(*flags);
  if (command == "summary") return CmdSummary(*flags);
  if (command == "evaluate") return CmdEvaluate(*flags, telemetry);
  if (command == "telemetry-demo") return CmdTelemetryDemo(*flags, telemetry);
  std::cerr << "unknown command: " << command << "\n" << kUsage;
  return 1;
}

}  // namespace landmark_cli

int main(int argc, char** argv) { return landmark_cli::Main(argc, argv); }
