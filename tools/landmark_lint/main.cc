#include <cstdio>
#include <string>
#include <vector>

#include "landmark_lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--doc FILE|--no-doc] [FILE...]\n"
               "\n"
               "Static-analysis pass over the repo's determinism,\n"
               "concurrency, telemetry, and hygiene contracts\n"
               "(docs/architecture.md, \"Static analysis\").\n"
               "\n"
               "  --root DIR   repo root (default: .); without FILE args the\n"
               "               scan covers src/ tools/ bench/ tests/\n"
               "               examples/ minus tests/lint/fixtures/\n"
               "  --doc FILE   metric-name contract doc (default:\n"
               "               docs/architecture.md under the root)\n"
               "  --no-doc     disable the metric-name cross-check\n"
               "  --lock-graph-out FILE\n"
               "               write the lock-order graph (observed guard\n"
               "               nesting + ACQUIRED_BEFORE edges) as DOT\n"
               "\n"
               "exit status: 0 clean, 1 violations, 2 usage/IO error\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  landmark_lint::LintConfig config;
  config.root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg == "--root" && i + 1 < argc) {
      config.root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      config.root = arg.substr(7);
    } else if (arg == "--doc" && i + 1 < argc) {
      config.doc_path = argv[++i];
    } else if (arg.rfind("--doc=", 0) == 0) {
      config.doc_path = arg.substr(6);
    } else if (arg == "--no-doc") {
      config.doc_path.clear();
    } else if (arg == "--lock-graph-out" && i + 1 < argc) {
      config.lock_graph_out = argv[++i];
    } else if (arg.rfind("--lock-graph-out=", 0) == 0) {
      config.lock_graph_out = arg.substr(17);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      config.sources.emplace_back(arg);
    }
  }

  std::vector<landmark_lint::Diagnostic> diagnostics;
  std::string error;
  if (!landmark_lint::RunLint(config, &diagnostics, &error)) {
    std::fprintf(stderr, "landmark_lint: %s\n", error.c_str());
    return 2;
  }
  for (const landmark_lint::Diagnostic& d : diagnostics) {
    std::printf("%s\n", landmark_lint::FormatDiagnostic(d).c_str());
  }
  if (!diagnostics.empty()) {
    std::printf("landmark_lint: %zu violation(s)\n", diagnostics.size());
    return 1;
  }
  return 0;
}
