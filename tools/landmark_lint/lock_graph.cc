#include "landmark_lint/lock_graph.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace landmark_lint {

const char kRuleLockOrder[] = "lock-order";
const char kRuleLockBlocking[] = "lock-blocking";
const char kRuleRawMutex[] = "raw-mutex";

namespace {

/// Annotation macros that may trail a member declaration (see
/// util/thread_annotations.h). Everything else after the member name means
/// the line is not a declaration.
bool IsDeclAnnotation(const std::string& word) {
  return word == "GUARDED_BY" || word == "PT_GUARDED_BY" ||
         word == "ACQUIRED_BEFORE" || word == "ACQUIRED_AFTER" ||
         word == "REQUIRES" || word == "EXCLUDES";
}

/// Balanced-parenthesis scan: `open` indexes the '('; returns the index
/// one past the matching ')' (or line.size() when unterminated).
size_t SkipParens(const std::string& line, size_t open, std::string* inner) {
  int depth = 0;
  for (size_t i = open; i < line.size(); ++i) {
    if (line[i] == '(') {
      ++depth;
    } else if (line[i] == ')') {
      if (--depth == 0) {
        if (inner != nullptr) *inner = line.substr(open + 1, i - open - 1);
        return i + 1;
      }
    }
  }
  if (inner != nullptr) *inner = line.substr(open + 1);
  return line.size();
}

/// `<...>` template-argument scan starting at the '<'.
size_t SkipAngles(const std::string& line, size_t open) {
  int depth = 0;
  for (size_t i = open; i < line.size(); ++i) {
    if (line[i] == '<') ++depth;
    if (line[i] == '>' && --depth == 0) return i + 1;
  }
  return line.size();
}

std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!Trim(current).empty()) out.push_back(Trim(current));
  return out;
}

/// The member name a lock reference ultimately designates: strips `&`,
/// object prefixes (`shard.mu` -> `mu`, `buffer->mu` -> `mu`) but keeps
/// `::` qualifiers (`TaskGraph::mu_` stays qualified).
std::string LockRefName(const std::string& raw) {
  std::string ref = Trim(raw);
  while (!ref.empty() && (ref.front() == '&' || ref.front() == '*')) {
    ref.erase(ref.begin());
  }
  ref = Trim(ref);
  size_t dot = ref.find_last_of('.');
  size_t arrow = ref.rfind("->");
  size_t cut = std::string::npos;
  if (dot != std::string::npos) cut = dot + 1;
  if (arrow != std::string::npos && (cut == std::string::npos || arrow + 2 > cut)) {
    cut = arrow + 2;
  }
  if (cut != std::string::npos) ref = ref.substr(cut);
  // `this->mu_` handled by the arrow cut; call shapes like `Lock()` are
  // not lock references.
  if (!ref.empty() && ref.back() == ')') return "";
  return Trim(ref);
}

std::string IdentifierAt(const std::string& line, size_t pos) {
  size_t end = pos;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  return line.substr(pos, end - pos);
}

/// Walks left from `end` (exclusive) over one identifier; returns it ("" if
/// none).
std::string IdentifierEndingAt(const std::string& line, size_t end) {
  size_t begin = end;
  while (begin > 0 && IsIdentChar(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

bool IsDirective(const std::string& code_line) {
  const std::string trimmed = Trim(code_line);
  return !trimmed.empty() && trimmed[0] == '#';
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += "\"" + n + "\"";
  }
  return out;
}

/// Tracks class/struct nesting by brace counting. Namespaces and plain
/// blocks push anonymous frames so depth stays honest; only class frames
/// contribute to the identity path.
class ScopeTracker {
 public:
  struct Frame {
    char kind = 'b';        // 'c' class, 'n' namespace, 'b' body/other
    std::string name;       // class name for 'c'
    std::string fn_class;   // for 'b': class qualifier of the function
    std::string fn_name;    // for 'b': function name, when known
  };

  std::vector<Frame>& frames() { return frames_; }

  std::string ClassPath() const {
    std::string path;
    for (const Frame& f : frames_) {
      if (f.kind != 'c' || f.name.empty()) continue;
      if (!path.empty()) path += "::";
      path += f.name;
    }
    return path;
  }

  /// Innermost function-body context: the class qualifier of the enclosing
  /// function definition, falling back to the lexical class path.
  std::string ContextClass() const {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == 'b' && !it->fn_class.empty()) return it->fn_class;
    }
    return ClassPath();
  }

  bool InFunctionBody() const {
    for (const Frame& f : frames_) {
      if (f.kind == 'b') return true;
    }
    return false;
  }

  /// Records a `class X` / `struct X` head seen at `pos`; the name applies
  /// to the next '{'.
  void PendClass(std::string name) { pending_class_ = std::move(name); }
  void PendNamespace() { pending_namespace_ = true; }
  void PendFunction(std::string cls, std::string fn) {
    pending_fn_class_ = std::move(cls);
    pending_fn_name_ = std::move(fn);
  }
  void ClearPending() {
    pending_class_.clear();
    pending_namespace_ = false;
    pending_fn_class_.clear();
    pending_fn_name_.clear();
  }

  void OpenBrace() {
    Frame f;
    if (!pending_class_.empty()) {
      f.kind = 'c';
      f.name = pending_class_;
    } else if (pending_namespace_) {
      f.kind = 'n';
    } else {
      f.kind = 'b';
      f.fn_class = !pending_fn_class_.empty() ? pending_fn_class_
                                              : ClassPath();
      f.fn_name = pending_fn_name_;
    }
    frames_.push_back(std::move(f));
    ClearPending();
  }

  void CloseBrace() {
    if (!frames_.empty()) frames_.pop_back();
  }

 private:
  std::vector<Frame> frames_;
  std::string pending_class_;
  bool pending_namespace_ = false;
  std::string pending_fn_class_;
  std::string pending_fn_name_;
};

/// Parses `class`/`struct`/`namespace` heads on one line into the tracker's
/// pending state. The class name is the last identifier before the first
/// '{' or base-clause ':' — that skips attribute macros like
/// CAPABILITY("mutex").
void ScanScopeHeads(const std::string& line, ScopeTracker* tracker) {
  for (const char* keyword : {"class", "struct", "namespace"}) {
    size_t pos = FindToken(line, keyword, 0);
    if (pos == std::string::npos) continue;
    if (keyword[0] == 'n') {
      tracker->PendNamespace();
      continue;
    }
    size_t stop = line.size();
    for (size_t i = pos; i < line.size(); ++i) {
      if (line[i] == '{') {
        stop = i;
        break;
      }
      if (line[i] == ':' && (i + 1 >= line.size() || line[i + 1] != ':') &&
          (i == 0 || line[i - 1] != ':')) {
        stop = i;
        break;
      }
    }
    std::string name;
    size_t scan = pos + std::string(keyword).size();
    while (scan < stop) {
      scan = SkipSpace(line, scan);
      if (scan >= stop) break;
      if (IsIdentChar(line[scan])) {
        std::string word = IdentifierAt(line, scan);
        scan += word.size();
        name = std::move(word);
      } else if (line[scan] == '(') {
        scan = SkipParens(line, scan, nullptr);
      } else {
        ++scan;
      }
    }
    if (!name.empty()) tracker->PendClass(name);
  }
}

/// Feeds one line's braces/semicolons to the tracker (no other events);
/// used by the declaration pass, which only needs the class path.
void FeedBraces(const std::string& line, ScopeTracker* tracker) {
  for (char c : line) {
    if (c == '{') tracker->OpenBrace();
    if (c == '}') tracker->CloseBrace();
    if (c == ';') tracker->ClearPending();
  }
}

}  // namespace

void LockAnalyzer::AddFile(const FileText& file) {
  ScanDeclarations(file);
  files_.push_back(file);
}

void LockAnalyzer::ScanDeclarations(const FileText& file) {
  ScopeTracker tracker;
  bool in_directive = false;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const bool continued = in_directive;
    in_directive = (continued || IsDirective(line)) && !line.empty() &&
                   line.back() == '\\';
    if (continued || IsDirective(line)) continue;
    ScanScopeHeads(line, &tracker);

    // Member / file-scope mutex declarations.
    struct Kind {
      std::string token;
      bool wrapper;
    };
    const std::vector<Kind> kinds = {
        {"Mutex", true},
        {std::string("std::") + "mutex", false},
        {std::string("std::") + "shared_mutex", false},
    };
    for (const Kind& kind : kinds) {
      size_t pos = FindToken(line, kind.token, 0);
      while (pos != std::string::npos) {
        size_t after = pos + kind.token.size();
        if (after < line.size() && (line[after] == '>' || line[after] == '&' ||
                                    line[after] == '*' ||
                                    line[after] == ':' ||
                                    line[after] == '(')) {
          pos = FindToken(line, kind.token, after);
          continue;
        }
        size_t name_begin = SkipSpace(line, after);
        std::string member = name_begin < line.size()
                                 ? IdentifierAt(line, name_begin)
                                 : "";
        if (member.empty()) {
          pos = FindToken(line, kind.token, after);
          continue;
        }
        // Skip trailing annotations; collect the ordering ones.
        size_t tail = SkipSpace(line, name_begin + member.size());
        std::vector<std::string> before_refs, after_refs;
        bool is_decl = false;
        while (tail < line.size()) {
          if (line[tail] == ';' || line[tail] == '=' || line[tail] == '{') {
            is_decl = true;
            break;
          }
          if (!IsIdentChar(line[tail])) break;
          const std::string word = IdentifierAt(line, tail);
          size_t open = SkipSpace(line, tail + word.size());
          if (!IsDeclAnnotation(word) || open >= line.size() ||
              line[open] != '(') {
            break;
          }
          std::string inner;
          tail = SkipSpace(line, SkipParens(line, open, &inner));
          if (word == "ACQUIRED_BEFORE") {
            for (std::string& ref : SplitArgs(inner)) {
              before_refs.push_back(std::move(ref));
            }
          } else if (word == "ACQUIRED_AFTER") {
            for (std::string& ref : SplitArgs(inner)) {
              after_refs.push_back(std::move(ref));
            }
          }
        }
        if (is_decl) {
          Decl decl;
          decl.member = member;
          decl.context_class = tracker.ClassPath();
          decl.identity = decl.context_class.empty()
                              ? member
                              : decl.context_class + "::" + member;
          decl.file = file.rel_path;
          decl.line = static_cast<int>(i) + 1;
          decl.is_wrapper = kind.wrapper;
          decl.before_refs = std::move(before_refs);
          decl.after_refs = std::move(after_refs);
          if (kind.wrapper && i < file.text.size()) {
            // The constructor name literal, read from the literal-preserving
            // view (the code view blanks string contents).
            const std::string& text = file.text[i];
            size_t name_pos = FindToken(text, member, 0);
            size_t quote = name_pos == std::string::npos
                               ? std::string::npos
                               : text.find('"', name_pos);
            if (quote != std::string::npos) {
              size_t close = text.find('"', quote + 1);
              if (close != std::string::npos) {
                decl.name_literal = text.substr(quote + 1, close - quote - 1);
              }
            }
          }
          nodes_.insert(decl.identity);
          decls_.push_back(std::move(decl));
        }
        pos = FindToken(line, kind.token, after);
      }
    }

    // Function declarations carrying REQUIRES / EXCLUDES (pure declarations
    // only — `...;`; inline definitions are handled by the scope pass).
    const std::string trimmed = Trim(line);
    if (!trimmed.empty() && trimmed.back() == ';') {
      for (const char* word : {"REQUIRES", "EXCLUDES"}) {
        size_t pos = FindToken(line, word, 0);
        if (pos == std::string::npos) continue;
        size_t open = SkipSpace(line, pos + std::string(word).size());
        if (open >= line.size() || line[open] != '(') continue;
        std::string inner;
        SkipParens(line, open, &inner);
        size_t first_paren = line.find('(');
        if (first_paren == std::string::npos || first_paren == 0) continue;
        std::string fn = IdentifierEndingAt(line, first_paren);
        if (fn == word) {
          // Annotation-only continuation line (`... body)\n    EXCLUDES(x);`):
          // the function name sits before the last '(' of the previous
          // code line.
          for (size_t j = i; j-- > 0;) {
            const std::string prev = Trim(file.code[j]);
            if (prev.empty()) continue;
            size_t paren = file.code[j].find('(');
            fn = paren == std::string::npos
                     ? ""
                     : IdentifierEndingAt(file.code[j], paren);
            break;
          }
        }
        if (fn.empty() || fn == word) continue;
        FnAnnotation annotation;
        annotation.cls = tracker.ClassPath();
        annotation.fn = fn;
        annotation.file = file.rel_path;
        annotation.is_excludes = word[0] == 'E';
        annotation.refs = SplitArgs(inner);
        fn_annotations_.push_back(std::move(annotation));
      }
    }

    FeedBraces(line, &tracker);
  }
}

std::string LockAnalyzer::Resolve(const std::string& ref,
                                  const std::string& context_class,
                                  const std::string& file) const {
  const std::string name = LockRefName(ref);
  if (name.empty()) return "";
  if (name.find("::") != std::string::npos) {
    for (const Decl& d : decls_) {
      if (d.identity == name) return d.identity;
    }
    for (const Decl& d : decls_) {
      if (d.identity.size() > name.size() &&
          d.identity.compare(d.identity.size() - name.size(), name.size(),
                             name) == 0 &&
          d.identity[d.identity.size() - name.size() - 1] == ':') {
        return d.identity;
      }
    }
    return name;
  }
  const Decl* in_context = nullptr;
  const Decl* in_file = nullptr;
  const Decl* anywhere = nullptr;
  int candidates = 0;
  for (const Decl& d : decls_) {
    if (d.member != name) continue;
    ++candidates;
    anywhere = &d;
    if (in_file == nullptr && d.file == file) in_file = &d;
    if (in_context == nullptr && !context_class.empty() &&
        (d.context_class == context_class ||
         StartsWith(d.context_class, context_class + "::"))) {
      in_context = &d;
    }
  }
  if (in_context != nullptr) return in_context->identity;
  if (in_file != nullptr) return in_file->identity;
  if (candidates == 1) return anywhere->identity;
  return name;  // unresolved or ambiguous: participate under the raw name
}

void LockAnalyzer::AddEdge(const std::string& from, const std::string& to,
                           const std::string& file, int line, bool annotated) {
  if (from.empty() || to.empty() || from == to) return;
  nodes_.insert(from);
  nodes_.insert(to);
  auto& map = annotated ? annotated_ : observed_;
  map.emplace(std::make_pair(from, to), Edge{file, line, annotated});
}

void LockAnalyzer::ScanGuardScopes(const FileText& file,
                                   std::vector<LockFinding>* out) {
  struct Guard {
    std::string var;                      // "" for REQUIRES pseudo-guards
    std::vector<std::string> identities;
    size_t depth = 0;  // frames_.size() at creation; dies below it
    int line = 0;
    bool active = true;
  };
  ScopeTracker tracker;
  std::vector<Guard> guards;
  std::vector<std::string> pending_requires;  // for the next '{'

  auto record_acquisition = [&](const std::vector<std::string>& ids,
                                int line_no) {
    for (const Guard& g : guards) {
      if (!g.active) continue;
      for (const std::string& held : g.identities) {
        for (const std::string& id : ids) {
          if (held == id) {
            out->push_back(LockFinding{
                file.rel_path, line_no, kRuleLockOrder,
                "nested acquisition of lock rank \"" + id +
                    "\" (already held since line " +
                    std::to_string(g.line) +
                    "); the runtime detector aborts on this — merge the "
                    "critical sections or split the mutex"});
          } else {
            AddEdge(held, id, file.rel_path, line_no, false);
          }
        }
      }
    }
  };

  struct Event {
    size_t pos;
    int kind;  // 0 brace/semicolon, 1 guard, 2 toggle, 3 blocking, 4 excludes
    char brace = '\0';
    Guard guard;
    std::string var;        // toggle target
    bool toggle_lock = false;
    std::string what;       // blocking description / excluded fn
    std::string wait_arg;   // cv-wait lock argument ("" for non-waits)
    bool is_wait = false;
  };

  bool in_directive = false;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const int line_no = static_cast<int>(i) + 1;
    const bool continued = in_directive;
    in_directive = (continued || IsDirective(line)) && !line.empty() &&
                   line.back() == '\\';
    if (continued || IsDirective(line)) continue;

    ScanScopeHeads(line, &tracker);

    std::vector<Event> events;
    for (size_t p = 0; p < line.size(); ++p) {
      if (line[p] == '{' || line[p] == '}' || line[p] == ';') {
        Event e;
        e.pos = p;
        e.kind = 0;
        e.brace = line[p];
        events.push_back(std::move(e));
      }
    }

    // Function-definition qualifier `Class::Fn(` — remembered for the next
    // '{' so REQUIRES contexts and member resolution know the class.
    if (!tracker.InFunctionBody()) {
      size_t q = line.find("::");
      while (q != std::string::npos) {
        const std::string left = IdentifierEndingAt(line, q);
        size_t rhs = q + 2;
        if (rhs < line.size() && line[rhs] == '~') ++rhs;
        const std::string right =
            rhs < line.size() ? IdentifierAt(line, rhs) : "";
        if (!left.empty() && !right.empty()) {
          size_t open = rhs + right.size();
          if (open < line.size() && line[open] == '(') {
            tracker.PendFunction(left, right);
            const std::string key = left + "::" + right;
            auto it = requires_.find(key);
            if (it != requires_.end()) {
              pending_requires = it->second;
            }
          }
        }
        q = line.find("::", q + 2);
      }
    }
    // Inline definition with REQUIRES on the same line as its body.
    if (line.find('{') != std::string::npos) {
      size_t pos = FindToken(line, "REQUIRES", 0);
      if (pos != std::string::npos) {
        size_t open = SkipSpace(line, pos + 8);
        if (open < line.size() && line[open] == '(') {
          std::string inner;
          SkipParens(line, open, &inner);
          for (const std::string& ref : SplitArgs(inner)) {
            pending_requires.push_back(
                Resolve(ref, tracker.ContextClass(), file.rel_path));
          }
        }
      }
    }

    // Guard declarations.
    struct Opener {
      std::string token;
      bool address_of;  // MutexLock takes `&mu`; std guards take `mu`
    };
    const std::vector<Opener> openers = {
        {"MutexLock", true},
        {"lock_guard", false},
        {"unique_lock", false},
        {"scoped_lock", false},
    };
    for (const Opener& opener : openers) {
      size_t pos = FindToken(line, opener.token, 0);
      while (pos != std::string::npos) {
        size_t cursor = pos + opener.token.size();
        if (cursor < line.size() && line[cursor] == '<') {
          cursor = SkipAngles(line, cursor);
        }
        cursor = SkipSpace(line, cursor);
        const std::string var =
            cursor < line.size() ? IdentifierAt(line, cursor) : "";
        size_t open = SkipSpace(line, cursor + var.size());
        if (!var.empty() && open < line.size() && line[open] == '(') {
          std::string inner;
          SkipParens(line, open, &inner);
          Event e;
          e.pos = pos;
          e.kind = 1;
          e.guard.var = var;
          e.guard.line = line_no;
          for (const std::string& arg : SplitArgs(inner)) {
            if (arg.find("defer_lock") != std::string::npos) {
              e.guard.active = false;
              continue;
            }
            if (arg.find("adopt_lock") != std::string::npos ||
                arg.find("try_to_lock") != std::string::npos) {
              continue;
            }
            const std::string id =
                Resolve(arg, tracker.ContextClass(), file.rel_path);
            if (!id.empty()) e.guard.identities.push_back(id);
          }
          if (!e.guard.identities.empty()) events.push_back(std::move(e));
        }
        pos = FindToken(line, opener.token, pos + opener.token.size());
      }
    }

    // `lock.unlock()` / `lock.lock()` toggles on tracked guard variables.
    for (const char* method : {"unlock", "lock"}) {
      size_t pos = FindToken(line, method, 0);
      while (pos != std::string::npos) {
        const size_t end = pos + std::string(method).size();
        if (pos > 0 && line[pos - 1] == '.' && end < line.size() &&
            line[end] == '(') {
          Event e;
          e.pos = pos;
          e.kind = 2;
          e.var = IdentifierEndingAt(line, pos - 1);
          e.toggle_lock = method[0] == 'l';
          if (!e.var.empty()) events.push_back(std::move(e));
        }
        pos = FindToken(line, method, end);
      }
    }

    // Blocking calls.
    auto add_blocking = [&events](size_t pos, std::string what,
                                  std::string wait_arg = "",
                                  bool is_wait = false) {
      Event e;
      e.pos = pos;
      e.kind = 3;
      e.what = std::move(what);
      e.wait_arg = std::move(wait_arg);
      e.is_wait = is_wait;
      events.push_back(std::move(e));
    };
    for (const char* method : {"wait", "wait_for", "wait_until"}) {
      size_t pos = FindToken(line, method, 0);
      while (pos != std::string::npos) {
        const size_t end = pos + std::string(method).size();
        if (pos > 0 && line[pos - 1] == '.' && end < line.size() &&
            line[end] == '(') {
          std::string inner;
          SkipParens(line, end, &inner);
          const std::vector<std::string> args = SplitArgs(inner);
          add_blocking(pos, "condition-variable " + std::string(method),
                       args.empty() ? "" : args[0], true);
        }
        pos = FindToken(line, method, end);
      }
    }
    for (const char* fn : {"Submit", "SubmitLocal", "ParallelFor", "Wait"}) {
      size_t pos = FindToken(line, fn, 0);
      while (pos != std::string::npos) {
        const size_t end = pos + std::string(fn).size();
        if (end < line.size() && line[end] == '(') {
          add_blocking(pos, std::string(fn) +
                                "() (blocks on the thread pool)");
        }
        pos = FindToken(line, fn, end);
      }
    }
    {
      size_t pos = FindToken(line, "LANDMARK_BLOCKING_POINT", 0);
      if (pos != std::string::npos &&
          pos + 23 < line.size() && line[pos + 23] == '(') {
        add_blocking(pos, "a registered LANDMARK_BLOCKING_POINT");
      }
    }
    {
      size_t pos = FindToken(line, "join", 0);
      while (pos != std::string::npos) {
        if (pos > 0 && line[pos - 1] == '.' && pos + 4 < line.size() &&
            line[pos + 4] == '(') {
          add_blocking(pos, "thread join");
        }
        pos = FindToken(line, "join", pos + 4);
      }
    }
    for (const char* fn : {"sleep_for", "sleep_until"}) {
      size_t pos = FindToken(line, fn, 0);
      if (pos != std::string::npos) add_blocking(pos, std::string(fn) + "()");
    }
    for (const char* fn :
         {"accept", "read", "write", "recv", "send", "connect", "poll",
          "select"}) {
      size_t pos = FindToken(line, fn, 0);
      while (pos != std::string::npos) {
        const size_t end = pos + std::string(fn).size();
        if (pos >= 2 && line[pos - 1] == ':' && line[pos - 2] == ':' &&
            end < line.size() && line[end] == '(') {
          add_blocking(pos, "socket/file I/O ::" + std::string(fn) + "()");
        }
        pos = FindToken(line, fn, end);
      }
    }

    // Calls into functions whose declaration EXCLUDES a mutex.
    for (const auto& [fn, excluded] : excludes_) {
      size_t pos = FindToken(line, fn, 0);
      while (pos != std::string::npos) {
        const size_t end = pos + fn.size();
        if (end < line.size() && line[end] == '(') {
          Event e;
          e.pos = pos;
          e.kind = 4;
          e.what = fn;
          events.push_back(std::move(e));
        }
        pos = FindToken(line, fn, end);
      }
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.pos < b.pos;
                     });

    for (Event& event : events) {
      switch (event.kind) {
        case 0:
          if (event.brace == '{') {
            tracker.OpenBrace();
            if (!pending_requires.empty()) {
              Guard pseudo;
              pseudo.identities = std::move(pending_requires);
              pending_requires.clear();
              pseudo.depth = tracker.frames().size();
              pseudo.line = line_no;
              record_acquisition(pseudo.identities, line_no);
              guards.push_back(std::move(pseudo));
            }
          } else if (event.brace == '}') {
            tracker.CloseBrace();
            while (!guards.empty() &&
                   guards.back().depth > tracker.frames().size()) {
              guards.pop_back();
            }
          } else {
            tracker.ClearPending();
          }
          break;
        case 1:
          event.guard.depth = tracker.frames().size();
          if (event.guard.active) {
            record_acquisition(event.guard.identities, line_no);
          }
          guards.push_back(std::move(event.guard));
          break;
        case 2:
          for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
            if (it->var != event.var) continue;
            if (event.toggle_lock && !it->active) {
              record_acquisition(it->identities, line_no);
            }
            it->active = event.toggle_lock;
            break;
          }
          break;
        case 3: {
          std::vector<std::string> held;
          for (const Guard& g : guards) {
            if (!g.active) continue;
            if (event.is_wait && !event.wait_arg.empty() &&
                g.var == event.wait_arg) {
              continue;  // the wait's own lock is released by the wait
            }
            for (const std::string& id : g.identities) held.push_back(id);
          }
          if (!held.empty()) {
            out->push_back(LockFinding{
                file.rel_path, line_no, kRuleLockBlocking,
                "lock(s) " + JoinNames(held) + " held across " + event.what +
                    "; release before blocking (the runtime detector aborts "
                    "here under LANDMARK_DEADLOCK_DEBUG)"});
          }
          break;
        }
        case 4: {
          auto it = excludes_.find(event.what);
          if (it == excludes_.end()) break;
          for (const Guard& g : guards) {
            if (!g.active) continue;
            for (const std::string& id : g.identities) {
              if (std::find(it->second.begin(), it->second.end(), id) ==
                  it->second.end()) {
                continue;
              }
              out->push_back(LockFinding{
                  file.rel_path, line_no, kRuleLockOrder,
                  "call to " + event.what + "() while holding \"" + id +
                      "\", which its declaration EXCLUDES"});
            }
          }
          break;
        }
      }
    }
  }
}

void LockAnalyzer::ResolveAnnotations(std::vector<LockFinding>* out) {
  for (const Decl& decl : decls_) {
    if (decl.is_wrapper && PathIsUnder(decl.file, "src/") &&
        decl.name_literal != decl.identity) {
      out->push_back(LockFinding{
          decl.file, decl.line, kRuleRawMutex,
          "Mutex \"" + decl.member + "\" must be constructed with its " +
              "identity literal \"" + decl.identity + "\" (found \"" +
              decl.name_literal +
              "\"); the literal is the rank the runtime deadlock detector "
              "and this graph share"});
    }
    for (const std::string& ref : decl.before_refs) {
      AddEdge(decl.identity, Resolve(ref, decl.context_class, decl.file),
              decl.file, decl.line, true);
    }
    for (const std::string& ref : decl.after_refs) {
      AddEdge(Resolve(ref, decl.context_class, decl.file), decl.identity,
              decl.file, decl.line, true);
    }
  }
  for (const FnAnnotation& annotation : fn_annotations_) {
    std::vector<std::string> ids;
    for (const std::string& ref : annotation.refs) {
      const std::string id =
          Resolve(ref, annotation.cls, annotation.file);
      if (!id.empty()) ids.push_back(id);
    }
    if (ids.empty()) continue;
    auto& map = annotation.is_excludes ? excludes_ : requires_;
    const std::string qualified = annotation.cls.empty()
                                      ? annotation.fn
                                      : annotation.cls + "::" + annotation.fn;
    std::vector<std::string>& qualified_slot = map[qualified];
    qualified_slot.insert(qualified_slot.end(), ids.begin(), ids.end());
    if (annotation.is_excludes) {
      // Call sites cannot see the class of the callee lexically, so
      // EXCLUDES also registers under the bare function name.
      std::vector<std::string>& bare_slot = map[annotation.fn];
      for (const std::string& id : ids) {
        if (std::find(bare_slot.begin(), bare_slot.end(), id) ==
            bare_slot.end()) {
          bare_slot.push_back(id);
        }
      }
    }
  }
}

void LockAnalyzer::CheckGraph(std::vector<LockFinding>* out) {
  // (a) observed nesting contradicting an ACQUIRED_BEFORE/AFTER edge.
  std::set<std::pair<std::string, std::string>> contradicted;
  for (const auto& [pair, edge] : annotated_) {
    auto reverse = observed_.find({pair.second, pair.first});
    if (reverse == observed_.end()) continue;
    contradicted.insert(pair);
    out->push_back(LockFinding{
        reverse->second.file, reverse->second.line, kRuleLockOrder,
        "acquires \"" + pair.first + "\" while holding \"" + pair.second +
            "\", contradicting the ACQUIRED_BEFORE order declared at " +
            edge.file + ":" + std::to_string(edge.line)});
  }

  // (b) cycles in the combined graph (contradictions already reported).
  std::map<std::string, std::vector<std::string>> adjacency;
  auto edge_at = [this](const std::string& from, const std::string& to)
      -> const Edge* {
    auto it = observed_.find({from, to});
    if (it != observed_.end()) return &it->second;
    it = annotated_.find({from, to});
    return it != annotated_.end() ? &it->second : nullptr;
  };
  for (const auto& [pair, edge] : observed_) {
    adjacency[pair.first].push_back(pair.second);
  }
  for (const auto& [pair, edge] : annotated_) {
    if (contradicted.count(pair) != 0) continue;
    adjacency[pair.first].push_back(pair.second);
  }
  std::set<std::string> reported;
  for (const auto& [from, tos] : adjacency) {
    for (const std::string& to : tos) {
      // A cycle exists through edge from->to iff `to` reaches `from`.
      std::vector<std::string> stack = {to};
      std::map<std::string, std::string> parent;
      parent[to] = "";
      bool found = false;
      while (!stack.empty() && !found) {
        const std::string node = stack.back();
        stack.pop_back();
        auto it = adjacency.find(node);
        if (it == adjacency.end()) continue;
        for (const std::string& next : it->second) {
          if (parent.count(next) != 0) continue;
          parent[next] = node;
          if (next == from) {
            found = true;
            break;
          }
          stack.push_back(next);
        }
      }
      if (!found) continue;
      std::vector<std::string> cycle;  // from -> to -> ... -> from
      cycle.push_back(from);
      // The parent chain runs to -> ... -> from; rebuild it forward.
      std::vector<std::string> forward;
      for (std::string node = from;; node = parent[node]) {
        forward.push_back(node);
        if (node == to) break;
      }
      std::reverse(forward.begin(), forward.end());  // to ... from
      cycle.insert(cycle.end(), forward.begin(), forward.end());

      std::vector<std::string> canonical(cycle.begin(), cycle.end() - 1);
      std::sort(canonical.begin(), canonical.end());
      std::string key;
      for (const std::string& node : canonical) key += node + "\x01";
      if (!reported.insert(key).second) continue;

      std::string path = "\"" + cycle[0] + "\"";
      std::string worst_file;
      int worst_line = 0;
      for (size_t k = 1; k < cycle.size(); ++k) {
        const Edge* edge = edge_at(cycle[k - 1], cycle[k]);
        std::string label = "annotated";
        if (edge != nullptr) {
          label = edge->file + ":" + std::to_string(edge->line);
          if (!edge->annotated &&
              (edge->file > worst_file ||
               (edge->file == worst_file && edge->line > worst_line))) {
            worst_file = edge->file;
            worst_line = edge->line;
          }
        }
        path += " -> \"" + cycle[k] + "\" (" + label + ")";
      }
      if (worst_file.empty()) {
        const Edge* edge = edge_at(cycle[0], cycle[1]);
        worst_file = edge != nullptr ? edge->file : "";
        worst_line = edge != nullptr ? edge->line : 1;
      }
      out->push_back(LockFinding{
          worst_file, worst_line, kRuleLockOrder,
          "lock-order cycle: " + path +
              "; a second thread interleaving these acquisitions deadlocks "
              "— pick one order and document it with ACQUIRED_BEFORE"});
    }
  }
}

void LockAnalyzer::Finish(std::vector<LockFinding>* findings) {
  if (finished_) return;
  finished_ = true;
  ResolveAnnotations(findings);
  for (const FileText& file : files_) {
    ScanGuardScopes(file, findings);
  }
  CheckGraph(findings);
}

std::string LockAnalyzer::ToDot() const {
  std::ostringstream out;
  out << "// Lock-order graph emitted by landmark_lint --lock-graph-out.\n"
      << "// Solid edges: observed guard nesting (one witness site each).\n"
      << "// Dashed edges: ACQUIRED_BEFORE/ACQUIRED_AFTER annotations.\n"
      << "digraph lock_order {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontsize=10];\n";
  for (const std::string& node : nodes_) {
    out << "  \"" << node << "\";\n";
  }
  for (const auto& [pair, edge] : observed_) {
    out << "  \"" << pair.first << "\" -> \"" << pair.second
        << "\" [label=\"" << edge.file << ":" << edge.line << "\"];\n";
  }
  for (const auto& [pair, edge] : annotated_) {
    if (observed_.count(pair) != 0) continue;
    out << "  \"" << pair.first << "\" -> \"" << pair.second
        << "\" [style=dashed, label=\"" << edge.file << ":" << edge.line
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace landmark_lint
