#include "landmark_lint/source_text.h"

#include <cctype>

namespace landmark_lint {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

bool PathIsUnder(const std::string& rel, const std::string& dir) {
  return StartsWith(rel, dir);
}

FileText SplitFile(const std::string& rel_path, const std::string& content) {
  FileText out;
  out.rel_path = rel_path;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the ")delim\"" terminator
  std::string code_line, text_line, comment_line;
  auto flush = [&]() {
    out.code.push_back(code_line);
    out.text.push_back(text_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    text_line.clear();
    comment_line.clear();
  };
  const size_t n = content.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( ... )delim" — only when R directly precedes the quote
          // and is not part of a longer identifier (LR"..." etc. are not
          // used in this codebase).
          const char prev = code_line.empty() ? '\0' : code_line.back();
          const char prev2 =
              code_line.size() < 2 ? '\0' : code_line[code_line.size() - 2];
          if (prev == 'R' && !IsIdentChar(prev2)) {
            size_t paren = content.find('(', i + 1);
            if (paren != std::string::npos) {
              raw_delim = ")" + content.substr(i + 1, paren - i - 1) + "\"";
              state = State::kRawString;
              code_line += '"';
              text_line += content.substr(i, paren - i + 1);
              i = paren;
              break;
            }
          }
          state = State::kString;
          code_line += '"';
          text_line += '"';
        } else if (c == '\'') {
          // Skip digit separators (1'000) and the rare char-literal-after-
          // identifier, which never occurs in practice.
          const char prev = code_line.empty() ? '\0' : code_line.back();
          if (IsIdentChar(prev)) {
            code_line += c;
            text_line += c;
          } else {
            state = State::kChar;
            code_line += '\'';
            text_line += '\'';
          }
        } else {
          code_line += c;
          text_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        text_line += c;
        if (c == '\\' && next != '\0' && next != '\n') {
          text_line += next;
          ++i;
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        text_line += c;
        if (c == '\\' && next != '\0' && next != '\n') {
          text_line += next;
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        text_line += c;
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Append the rest of the terminator, minding embedded newlines
          // (a raw-string delimiter cannot contain one).
          text_line += raw_delim.substr(1);
          code_line += '"';
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  flush();  // final (possibly unterminated) line
  return out;
}

size_t FindToken(const std::string& line, const std::string& name,
                 size_t from) {
  size_t pos = line.find(name, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + name.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(name, pos + 1);
  }
  return std::string::npos;
}

size_t SkipSpace(const std::string& line, size_t pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
  return pos;
}

}  // namespace landmark_lint
