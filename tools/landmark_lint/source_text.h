#ifndef LANDMARK_TOOLS_LANDMARK_LINT_SOURCE_TEXT_H_
#define LANDMARK_TOOLS_LANDMARK_LINT_SOURCE_TEXT_H_

#include <string>
#include <vector>

/// \file
/// Shared lexical substrate for landmark_lint: the comment/string-aware
/// line splitter plus the small token helpers every rule builds on. Split
/// out of lint.cc so the lock-discipline pass (lock_graph.h) can reuse the
/// exact same view of a source file — both passes must agree on what is
/// code and what is a string literal, or a mutex name literal would count
/// as a lock acquisition.

namespace landmark_lint {

/// One source file split three ways: `code` has comments AND string/char
/// literal contents removed (the quotes stay, so call shapes survive),
/// `text` has only comments removed (rules that need literals, e.g. the
/// metric-name contract and the Mutex name-literal check, read this), and
/// `comments` holds each line's comment text (suppression parsing).
struct FileText {
  std::string rel_path;  // forward-slash path relative to the root
  std::vector<std::string> code;
  std::vector<std::string> text;
  std::vector<std::string> comments;
};

/// Line-structure-preserving scanner: one pass over the bytes with a small
/// state machine for //, /* */, "...", '.', and R"delim(...)delim".
FileText SplitFile(const std::string& rel_path, const std::string& content);

bool IsIdentChar(char c);
bool StartsWith(const std::string& text, const std::string& prefix);
std::string Trim(const std::string& text);
bool PathIsUnder(const std::string& rel, const std::string& dir);

/// Finds identifier `name` at an identifier boundary, starting at `from`.
size_t FindToken(const std::string& line, const std::string& name,
                 size_t from);

size_t SkipSpace(const std::string& line, size_t pos);

}  // namespace landmark_lint

#endif  // LANDMARK_TOOLS_LANDMARK_LINT_SOURCE_TEXT_H_
