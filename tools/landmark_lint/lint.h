#ifndef LANDMARK_TOOLS_LANDMARK_LINT_LINT_H_
#define LANDMARK_TOOLS_LANDMARK_LINT_LINT_H_

#include <filesystem>
#include <string>
#include <vector>

/// \file
/// landmark_lint — the in-repo static-analysis pass that enforces the
/// project contracts the compiler cannot check (docs/architecture.md,
/// "Static analysis"):
///
///   banned-api       determinism contract: rand(, srand(, std::random_device,
///                    time(nullptr), std::chrono::system_clock are banned
///                    outside src/util/rng.*, src/util/timer.h and
///                    src/util/telemetry/ — all randomness flows through Rng
///                    streams, all timing through Timer / the trace clock.
///   raw-thread       concurrency contract: raw std::thread construction is
///                    banned outside src/util/thread_pool.{h,cc}; parallel
///                    stages go through ThreadPool::ParallelFor, whose static
///                    partitioning is what makes them deterministic. Ad-hoc
///                    std::condition_variable waits are banned under the same
///                    rule (additionally allowed in src/util/telemetry/):
///                    blocking goes through the pool's / TaskGraph's drain
///                    handles.
///   mutex-guard      every std::mutex / std::shared_mutex member in src/
///                    must be referenced by at least one GUARDED_BY /
///                    PT_GUARDED_BY annotation (util/thread_annotations.h);
///                    a std::condition_variable must live in a file that
///                    declares an owned mutex.
///   raw-mutex        lock discipline: raw std::mutex / std::shared_mutex is
///                    banned outside src/util/mutex.h — locks are
///                    landmark::Mutex, whose mandatory `Class::member` name
///                    literal is the rank shared by the static lock-order
///                    graph and the LANDMARK_DEADLOCK_DEBUG runtime
///                    detector. A wrapper whose literal does not match its
///                    computed identity is reported under the same rule.
///   lock-order       lock discipline: the global lock-order graph (observed
///                    guard nesting across src/ plus ACQUIRED_BEFORE /
///                    ACQUIRED_AFTER annotations) must be acyclic, observed
///                    nesting must not contradict an annotation, one rank
///                    must not nest inside itself, and a call must not enter
///                    a function whose declaration EXCLUDES a held mutex.
///   lock-blocking    lock discipline: no guard may stay active across a
///                    blocking call — condition-variable waits (other than
///                    on the wait's own lock), ThreadPool Submit /
///                    SubmitLocal / ParallelFor / Wait, thread join, sleep,
///                    raw socket I/O, or a LANDMARK_BLOCKING_POINT marker.
///   raw-simd         vectorization contract: raw intrinsic headers
///                    (immintrin / arm_neon) and OpenMP pragmas are banned
///                    outside src/util/simd.{h,cc} — vector kernels go
///                    through the landmark::simd shim, which owns runtime
///                    dispatch, the scalar fallbacks, and the bit-exactness
///                    contract.
///   metric-name      telemetry contract: metric-name string literals passed
///                    to the registry Get* calls must appear in the "Metric
///                    name contract" table of docs/architecture.md, and every
///                    documented name must still exist in code (tests/ may
///                    use scratch names and are exempt).
///   header-guard     headers guard with LANDMARK_<PATH>_H_ (path relative
///                    to src/, or to the repo root outside src/).
///   using-namespace  no `using namespace` in headers.
///   suppression      a comment of the form `landmark-lint:` + ` allow(R) why`
///                    (see docs/architecture.md for the exact spelling, which
///                    this header avoids so the linter does not read its own
///                    documentation as a suppression) suppresses rule R on its
///                    line, or on the next code line when the comment stands
///                    alone. The rationale is mandatory, the rule id must
///                    exist, and a suppression that matches no violation is
///                    itself reported, so suppressions never outlive the code
///                    they excuse.
///
/// The library is dependency-free (standard library only) so the lint
/// binary builds before anything else and the fixture tests can drive the
/// checks in-process.

namespace landmark_lint {

/// One finding, formatted as `file:line: [rule] message`.
struct Diagnostic {
  std::string file;  // relative to LintConfig::root when possible
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// All known rule ids (what allow(...) may name).
const std::vector<std::string>& KnownRules();

struct LintConfig {
  /// Repo root: the base for relative paths, allowlists, and the default
  /// scan (src/, tools/, bench/, tests/, examples/ — minus
  /// tests/lint/fixtures/, which holds deliberate violations).
  std::filesystem::path root;
  /// Explicit files to lint instead of the default scan (fixture tests).
  std::vector<std::filesystem::path> sources;
  /// Markdown file holding the "Metric name contract" table. Empty disables
  /// the metric-name rule. Relative paths resolve against `root`.
  std::filesystem::path doc_path = "docs/architecture.md";
  /// When set, the combined lock-order graph (observed nesting + annotated
  /// edges) is written here as Graphviz DOT after the scan. Relative paths
  /// resolve against the current directory, like any output file.
  std::filesystem::path lock_graph_out;
};

/// Runs every rule over the configured sources. Diagnostics come back
/// sorted by (file, line, rule). Returns false and sets `error` only for
/// environmental failures (unreadable root, missing explicit file) —
/// findings are not errors.
bool RunLint(const LintConfig& config, std::vector<Diagnostic>* diagnostics,
             std::string* error);

}  // namespace landmark_lint

#endif  // LANDMARK_TOOLS_LANDMARK_LINT_LINT_H_
