#ifndef LANDMARK_TOOLS_LANDMARK_LINT_LOCK_GRAPH_H_
#define LANDMARK_TOOLS_LANDMARK_LINT_LOCK_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "landmark_lint/source_text.h"

/// \file
/// Static lock-discipline pass (docs/architecture.md, "Lock discipline").
///
/// The analyzer builds one global lock-order graph for the tree. Nodes are
/// mutex identities — the `Class::member` path of each declared
/// `landmark::Mutex` / raw std::mutex, which by contract equals the name
/// literal passed to the wrapper constructor, so the static graph and the
/// runtime deadlock detector (util/mutex.h, LANDMARK_DEADLOCK_DEBUG) speak
/// the same node language. Edges come from two sources:
///
///   observed   lexical guard nesting: a MutexLock / lock_guard /
///              unique_lock / scoped_lock opened while another guard is
///              still active adds `held -> acquired`.
///   annotated  ACQUIRED_BEFORE / ACQUIRED_AFTER on the declaration
///              (util/thread_annotations.h), recording orders the lexical
///              pass cannot see because they cross a call boundary.
///
/// Findings:
///   lock-order     a cycle in the combined graph, an observed nesting that
///                  contradicts an ACQUIRED_BEFORE annotation, a nested
///                  acquisition of one rank, or a call into a function whose
///                  declaration EXCLUDES a currently held mutex.
///   lock-blocking  a guard still active across a registered blocking call:
///                  condition-variable waits (except on the wait's own
///                  lock), ThreadPool::Submit / SubmitLocal / ParallelFor /
///                  Wait, TaskGraph::Wait, thread join, sleep, raw socket
///                  I/O (::accept / ::read / ...), or a
///                  LANDMARK_BLOCKING_POINT marker.
///   raw-mutex      a `landmark::Mutex` whose name literal does not equal
///                  its computed `Class::member` identity (the raw
///                  std::mutex ban itself is a per-file rule in lint.cc).
///
/// The analysis is lexical, like every other landmark_lint rule: it sees
/// guard scopes inside one function body plus REQUIRES contexts, not
/// interprocedural lock flow — that is exactly the gap the ACQUIRED_BEFORE
/// annotations and the runtime detector cover.

namespace landmark_lint {

/// Rule ids emitted by the lock pass (also listed in KnownRules()).
extern const char kRuleLockOrder[];
extern const char kRuleLockBlocking[];
extern const char kRuleRawMutex[];

struct LockFinding {
  std::string file;
  int line = 0;
  const char* rule = nullptr;
  std::string message;
};

class LockAnalyzer {
 public:
  /// Registers one file (callers pass everything under src/, including the
  /// lint fixtures routed through a fixture root). Declarations and
  /// annotations are scanned immediately; guard-scope analysis waits for
  /// Finish() so identities resolve across files regardless of scan order.
  void AddFile(const FileText& file);

  /// Runs the guard-scope pass over every registered file, then the global
  /// graph checks (cycles, annotation contradictions). Call once.
  void Finish(std::vector<LockFinding>* findings);

  /// Graphviz rendering of the combined graph — solid edges are observed
  /// nestings labelled with one witness site, dashed edges are annotation-
  /// only. Valid after Finish().
  std::string ToDot() const;

 private:
  struct Decl {
    std::string identity;       // Class::member (or bare name at file scope)
    std::string member;         // trailing member name
    std::string context_class;  // enclosing class path, "" at file scope
    std::string file;
    int line = 0;
    bool is_wrapper = false;      // landmark::Mutex vs raw std::mutex
    std::string name_literal;     // wrapper constructor literal, if present
    std::vector<std::string> before_refs;  // ACQUIRED_BEFORE args, raw text
    std::vector<std::string> after_refs;   // ACQUIRED_AFTER args, raw text
  };

  struct Edge {
    std::string file;  // witness site (decl site for annotated edges)
    int line = 0;
    bool annotated = false;
  };

  /// REQUIRES / EXCLUDES seen on a function declaration, unresolved until
  /// every file's mutexes are known.
  struct FnAnnotation {
    std::string cls;   // class path at the declaration, "" at file scope
    std::string fn;
    std::string file;
    bool is_excludes = false;
    std::vector<std::string> refs;
  };

  void ScanDeclarations(const FileText& file);
  void ScanGuardScopes(const FileText& file, std::vector<LockFinding>* out);
  void ResolveAnnotations(std::vector<LockFinding>* out);
  void CheckGraph(std::vector<LockFinding>* out);

  /// Maps a mutex reference (`mu_`, `shard.mu`, `TaskGraph::mu_`) to a
  /// declared identity. Preference order: qualified suffix match, member
  /// declared in `context_class`, member declared in `file`, unique member
  /// match anywhere. Unresolvable references become their own node so
  /// fixture-local graphs still connect.
  std::string Resolve(const std::string& ref, const std::string& context_class,
                      const std::string& file) const;

  void AddEdge(const std::string& from, const std::string& to,
               const std::string& file, int line, bool annotated);

  std::vector<FileText> files_;
  std::vector<Decl> decls_;
  // (from, to) -> first witness. Observed and annotated edges are kept
  // apart: the contradiction check needs to know which is which.
  std::map<std::pair<std::string, std::string>, Edge> observed_;
  std::map<std::pair<std::string, std::string>, Edge> annotated_;
  std::set<std::string> nodes_;
  // Functions with REQUIRES / EXCLUDES on their declaration, keyed both as
  // "Class::fn" and bare "fn" (lexical lookup cannot always see the class).
  std::map<std::string, std::vector<std::string>> requires_;
  std::map<std::string, std::vector<std::string>> excludes_;
  std::vector<FnAnnotation> fn_annotations_;
  bool finished_ = false;
};

}  // namespace landmark_lint

#endif  // LANDMARK_TOOLS_LANDMARK_LINT_LOCK_GRAPH_H_
