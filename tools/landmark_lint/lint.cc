#include "landmark_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "landmark_lint/lock_graph.h"
#include "landmark_lint/source_text.h"

namespace landmark_lint {

namespace fs = std::filesystem;

namespace {

constexpr char kRuleBannedApi[] = "banned-api";
constexpr char kRuleRawThread[] = "raw-thread";
constexpr char kRuleMutexGuard[] = "mutex-guard";
constexpr char kRuleMetricName[] = "metric-name";
constexpr char kRuleSleepPoll[] = "sleep-poll";
constexpr char kRuleHeaderGuard[] = "header-guard";
constexpr char kRuleUsingNamespace[] = "using-namespace";
constexpr char kRuleSuppression[] = "suppression";
constexpr char kRuleRawSimd[] = "raw-simd";

/// One parsed `allow(...)` comment and the code line it covers.
struct Suppression {
  int comment_line = 0;  // 1-based line of the comment itself
  int target_line = 0;   // 1-based code line it suppresses (0: none found)
  std::string rule;
  std::string rationale;
  bool used = false;
};

constexpr char kAllowMarker[] = "landmark-lint: allow(";

std::vector<Suppression> ParseSuppressions(const FileText& file) {
  std::vector<Suppression> out;
  for (size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& comment = file.comments[i];
    size_t pos = comment.find(kAllowMarker);
    if (pos == std::string::npos) continue;
    Suppression s;
    s.comment_line = static_cast<int>(i) + 1;
    size_t open = pos + sizeof(kAllowMarker) - 1;
    size_t close = comment.find(')', open);
    if (close == std::string::npos) close = comment.size();
    s.rule = Trim(comment.substr(open, close - open));
    s.rationale =
        close < comment.size() ? Trim(comment.substr(close + 1)) : "";
    // A trailing comment covers its own line; a standalone comment covers
    // the next line that has any code on it.
    if (!Trim(file.code[i]).empty()) {
      s.target_line = s.comment_line;
    } else {
      for (size_t j = i + 1; j < file.code.size(); ++j) {
        if (!Trim(file.code[j]).empty()) {
          s.target_line = static_cast<int>(j) + 1;
          break;
        }
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Per-file sink: routes findings through the suppression table. Outlives
/// the per-file scan so the global metric-name pass can still honor
/// suppressions before FinishSuppressions runs.
class FileDiagnostics {
 public:
  FileDiagnostics(std::string rel_path, std::vector<Suppression> suppressions,
                  std::vector<Diagnostic>* out)
      : rel_path_(std::move(rel_path)),
        suppressions_(std::move(suppressions)),
        out_(out) {}

  void Emit(const char* rule, int line, std::string message) {
    for (Suppression& s : suppressions_) {
      if (s.target_line == line && s.rule == rule) {
        s.used = true;
        return;
      }
    }
    out_->push_back(Diagnostic{rel_path_, line, rule, std::move(message)});
  }

  /// Reports malformed / unused suppressions. Run after every rule so the
  /// `used` bits are final.
  void FinishSuppressions() {
    const std::vector<std::string>& known = KnownRules();
    for (const Suppression& s : suppressions_) {
      if (std::find(known.begin(), known.end(), s.rule) == known.end()) {
        out_->push_back(Diagnostic{rel_path_, s.comment_line, kRuleSuppression,
                                   "allow(" + s.rule +
                                       ") names an unknown rule"});
        continue;
      }
      if (s.rationale.empty()) {
        out_->push_back(Diagnostic{
            rel_path_, s.comment_line, kRuleSuppression,
            "allow(" + s.rule +
                ") has no rationale; say why the exception is sound"});
      }
      if (!s.used) {
        out_->push_back(Diagnostic{
            rel_path_, s.comment_line, kRuleSuppression,
            "allow(" + s.rule +
                ") matches no violation on its line; delete the stale "
                "suppression"});
      }
    }
  }

 private:
  std::string rel_path_;
  std::vector<Suppression> suppressions_;
  std::vector<Diagnostic>* out_;
};

// ---------------------------------------------------------------------------
// banned-api + raw-thread (determinism contract)

struct BannedToken {
  std::string token;     // identifier to find at a boundary
  bool needs_call;       // must be followed by '('
  std::string call_arg;  // when set: only a call with exactly this argument
  std::string message;
};

const std::vector<BannedToken>& BannedTokens() {
  static const std::vector<BannedToken>* tokens = [] {
    auto* t = new std::vector<BannedToken>();
    const std::string rng = "; draw from an Rng stream (util/rng.h) seeded "
                            "by (options.seed, record id, side)";
    t->push_back({"rand", true, "",
                  "rand() breaks the determinism contract" + rng});
    t->push_back({"srand", true, "",
                  "srand() breaks the determinism contract" + rng});
    t->push_back({"random_device", false, "",
                  "std::random_device is non-deterministic" + rng});
    t->push_back({"time", true, "nullptr",
                  "time(nullptr) is wall-clock state; use util/timer.h"});
    t->push_back({"time", true, "NULL",
                  "time(NULL) is wall-clock state; use util/timer.h"});
    t->push_back({"time", true, "0",
                  "time(0) is wall-clock state; use util/timer.h"});
    t->push_back({"system_clock", false, "",
                  "std::chrono::system_clock is not monotonic; use "
                  "util/timer.h (steady_clock) or the trace clock"});
    return t;
  }();
  return *tokens;
}

bool BannedApiExempt(const std::string& rel) {
  return PathIsUnder(rel, "src/util/telemetry/") || rel == "src/util/rng.h" ||
         rel == "src/util/rng.cc" || rel == "src/util/timer.h";
}

void CheckBannedApi(const FileText& file, FileDiagnostics* diag) {
  if (BannedApiExempt(file.rel_path)) return;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const BannedToken& banned : BannedTokens()) {
      size_t pos = FindToken(line, banned.token, 0);
      while (pos != std::string::npos) {
        size_t after = SkipSpace(line, pos + banned.token.size());
        bool hit = true;
        if (banned.needs_call) {
          if (after < line.size() && line[after] == '(') {
            if (!banned.call_arg.empty()) {
              size_t arg = SkipSpace(line, after + 1);
              size_t close = SkipSpace(line, arg + banned.call_arg.size());
              hit = line.compare(arg, banned.call_arg.size(),
                                 banned.call_arg) == 0 &&
                    close < line.size() && line[close] == ')';
            }
          } else {
            hit = false;
          }
        }
        if (hit) {
          diag->Emit(kRuleBannedApi, static_cast<int>(i) + 1, banned.message);
          break;  // one report per line per token kind
        }
        pos = FindToken(line, banned.token, pos + 1);
      }
    }
  }
}

bool RawThreadExempt(const std::string& rel) {
  return rel == "src/util/thread_pool.cc" || rel == "src/util/thread_pool.h";
}

/// Condition variables are additionally tolerated in the telemetry layer
/// (exporter lifecycle waits), where no pipeline determinism is at stake.
bool CondvarExempt(const std::string& rel) {
  return RawThreadExempt(rel) || PathIsUnder(rel, "src/util/telemetry/");
}

void CheckRawThread(const FileText& file, FileDiagnostics* diag) {
  const std::string thread_needle = std::string("std::") + "thread";
  const std::vector<std::string> condvar_needles = {
      std::string("std::") + "condition_variable",
      std::string("std::") + "condition_variable_any"};
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (!RawThreadExempt(file.rel_path)) {
      size_t pos = FindToken(line, thread_needle, 0);
      while (pos != std::string::npos) {
        // std::thread::hardware_concurrency() etc. is a capability query,
        // not a thread construction; everything else is banned.
        size_t after = pos + thread_needle.size();
        if (!(after + 1 < line.size() && line[after] == ':' &&
              line[after + 1] == ':')) {
          diag->Emit(kRuleRawThread, static_cast<int>(i) + 1,
                     "raw std::thread outside ThreadPool; route parallel work "
                     "through ThreadPool::ParallelFor so static partitioning "
                     "keeps results deterministic");
          break;
        }
        pos = FindToken(line, thread_needle, after);
      }
    }
    if (!CondvarExempt(file.rel_path)) {
      for (const std::string& needle : condvar_needles) {
        if (FindToken(line, needle, 0) == std::string::npos) continue;
        diag->Emit(kRuleRawThread, static_cast<int>(i) + 1,
                   "ad-hoc condition-variable wait outside ThreadPool; "
                   "synchronize through ThreadPool / TaskGraph (Wait, drain "
                   "handles) so blocking is centralized and lock-order "
                   "auditable");
        break;
      }
    }
  }
}

/// Ad-hoc sampler/monitor loops: sleeping in a poll loop hides a background
/// thread the flight deck cannot see and TSan cannot schedule around. The
/// sanctioned homes are the pool (worker parking) and the telemetry layer
/// (SamplingProfiler, StallWatchdog, exporter windows); everywhere else a
/// sleep needs an allow() rationale — tests wait on virtual clocks or
/// bounded yield-spins instead.
void CheckSleepPoll(const FileText& file, FileDiagnostics* diag) {
  if (CondvarExempt(file.rel_path)) return;
  const std::vector<std::string> needles = {"sleep_for", "sleep_until"};
  for (size_t i = 0; i < file.code.size(); ++i) {
    for (const std::string& needle : needles) {
      if (FindToken(file.code[i], needle, 0) == std::string::npos) continue;
      diag->Emit(kRuleSleepPoll, static_cast<int>(i) + 1,
                 "ad-hoc " + needle +
                     " polling outside ThreadPool/telemetry; background "
                     "monitors belong in the flight deck (SamplingProfiler, "
                     "StallWatchdog) and tests should advance the deck clock "
                     "or yield-spin with a bound instead of sleeping");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-guard + raw-mutex (concurrency contract)

struct SyncMember {
  int line = 0;
  std::string name;
  bool is_condition_variable = false;
};

/// Annotation macros that may sit between a member name and its
/// initializer, e.g. `Mutex mu_ ACQUIRED_BEFORE(other){"..."}` — the scan
/// skips their balanced argument list before judging the declaration tail.
bool IsMemberAnnotation(const std::string& word) {
  return word == "GUARDED_BY" || word == "PT_GUARDED_BY" ||
         word == "ACQUIRED_BEFORE" || word == "ACQUIRED_AFTER" ||
         word == "REQUIRES" || word == "EXCLUDES";
}

/// Owned mutex / condition_variable declarations: `std::mutex name;` and
/// `Mutex name{"..."};` shapes (with optional mutable/static, trailing
/// annotations, and optional initializer), not references, parameters, or
/// lock_guard template arguments.
std::vector<SyncMember> FindSyncMembers(const FileText& file) {
  std::vector<SyncMember> out;
  const std::vector<std::pair<std::string, bool>> kinds = {
      {"Mutex", false},
      {std::string("std::") + "mutex", false},
      {std::string("std::") + "shared_mutex", false},
      {std::string("std::") + "condition_variable", true},
      {std::string("std::") + "condition_variable_any", true},
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const auto& [kind, is_cv] : kinds) {
      size_t pos = FindToken(line, kind, 0);
      if (pos == std::string::npos) continue;
      size_t after = pos + kind.size();
      if (after < line.size() && (line[after] == '>' || line[after] == '&' ||
                                  line[after] == '*' || line[after] == ':' ||
                                  line[after] == '(')) {
        continue;  // template argument, reference, pointer, name, ctor
      }
      size_t name_begin = SkipSpace(line, after);
      if (name_begin >= line.size() || line[name_begin] == '&' ||
          line[name_begin] == '*') {
        continue;
      }
      size_t name_end = name_begin;
      while (name_end < line.size() && IsIdentChar(line[name_end])) {
        ++name_end;
      }
      if (name_end == name_begin) continue;
      size_t tail = SkipSpace(line, name_end);
      // Skip trailing annotation macros and their balanced arguments.
      while (tail < line.size() && IsIdentChar(line[tail])) {
        size_t word_end = tail;
        while (word_end < line.size() && IsIdentChar(line[word_end])) {
          ++word_end;
        }
        const std::string word = line.substr(tail, word_end - tail);
        size_t open = SkipSpace(line, word_end);
        if (!IsMemberAnnotation(word) || open >= line.size() ||
            line[open] != '(') {
          break;
        }
        int depth = 0;
        size_t close = open;
        for (; close < line.size(); ++close) {
          if (line[close] == '(') ++depth;
          if (line[close] == ')' && --depth == 0) break;
        }
        tail = SkipSpace(line, close < line.size() ? close + 1 : close);
      }
      if (tail < line.size() &&
          (line[tail] == ';' || line[tail] == '=' || line[tail] == '{')) {
        out.push_back(SyncMember{static_cast<int>(i) + 1,
                                 line.substr(name_begin, name_end - name_begin),
                                 is_cv});
      }
    }
  }
  return out;
}

/// Intrinsics confinement: vector code goes through the landmark::simd shim
/// (src/util/simd.h), which owns runtime dispatch, the scalar fallbacks, and
/// the bit-exactness contract. Raw intrinsic headers or OpenMP pragmas
/// anywhere else would fork that contract.
bool RawSimdExempt(const std::string& rel) {
  return rel == "src/util/simd.h" || rel == "src/util/simd.cc";
}

void CheckRawSimd(const FileText& file, FileDiagnostics* diag) {
  if (RawSimdExempt(file.rel_path)) return;
  // Needles assembled at runtime so this file does not flag itself.
  const std::vector<std::string> intrinsic_headers = {
      std::string("immintrin") + ".h", std::string("arm_neon") + ".h"};
  const std::string omp_pragma = std::string("#pragma") + " omp";
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    bool flagged = false;
    for (const std::string& header : intrinsic_headers) {
      if (line.find(header) == std::string::npos) continue;
      diag->Emit(kRuleRawSimd, static_cast<int>(i) + 1,
                 "raw SIMD intrinsics outside src/util/simd.*; use the "
                 "landmark::simd kernels so runtime dispatch and the "
                 "scalar-equivalence contract stay in one place");
      flagged = true;
      break;
    }
    if (flagged) continue;
    if (line.find(omp_pragma) != std::string::npos) {
      diag->Emit(kRuleRawSimd, static_cast<int>(i) + 1,
                 "OpenMP pragma outside src/util/simd.*; parallelism goes "
                 "through ThreadPool and vectorization through "
                 "landmark::simd");
    }
  }
}

void CheckMutexGuard(const FileText& file, FileDiagnostics* diag) {
  if (!PathIsUnder(file.rel_path, "src/")) return;
  const std::vector<SyncMember> members = FindSyncMembers(file);
  const std::vector<std::string> guard_macros = {"GUARDED_BY",
                                                 "PT_GUARDED_BY"};
  // Dangling guards: a GUARDED_BY(x) whose x names no mutex declared in
  // this file protects nothing — usually a member renamed out from under
  // its annotations.
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const std::string trimmed = Trim(line);
    // Preprocessor lines: the macro definitions themselves live in
    // util/thread_annotations.h.
    if (!trimmed.empty() && trimmed[0] == '#') continue;
    for (const std::string& macro : guard_macros) {
      size_t pos = FindToken(line, macro, 0);
      while (pos != std::string::npos) {
        size_t open = SkipSpace(line, pos + macro.size());
        if (open < line.size() && line[open] == '(') {
          size_t close = line.find(')', open);
          const std::string target = Trim(line.substr(
              open + 1,
              (close == std::string::npos ? line.size() : close) - open - 1));
          // Qualified targets (Class::mu) reference another scope; the
          // lock-graph pass resolves those. Plain names must be local.
          if (!target.empty() &&
              target.find("::") == std::string::npos &&
              target.find('.') == std::string::npos &&
              target.find("->") == std::string::npos) {
            bool declared = false;
            for (const SyncMember& m : members) {
              declared |= !m.is_condition_variable && m.name == target;
            }
            if (!declared) {
              diag->Emit(kRuleMutexGuard, static_cast<int>(i) + 1,
                         macro + "(" + target +
                             ") names no mutex declared in this file; the "
                             "annotation guards nothing");
            }
          }
        }
        pos = FindToken(line, macro, pos + macro.size());
      }
    }
  }
  if (members.empty()) return;
  bool has_mutex = false;
  for (const SyncMember& m : members) has_mutex |= !m.is_condition_variable;
  for (const SyncMember& member : members) {
    if (member.is_condition_variable) {
      if (!has_mutex) {
        diag->Emit(kRuleMutexGuard, member.line,
                   "condition_variable '" + member.name +
                       "' has no owned mutex in this file to wait on");
      }
      continue;
    }
    const std::string guarded = "GUARDED_BY(" + member.name + ")";
    const std::string pt_guarded = "PT_GUARDED_BY(" + member.name + ")";
    bool referenced = false;
    for (const std::string& line : file.code) {
      if (line.find(guarded) != std::string::npos ||
          line.find(pt_guarded) != std::string::npos) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      diag->Emit(kRuleMutexGuard, member.line,
                 "mutex '" + member.name + "' is referenced by no " + guarded +
                     " annotation; annotate the state it protects "
                     "(util/thread_annotations.h)");
    }
  }
}

/// raw-mutex: the tree's lock primitive is landmark::Mutex (util/mutex.h) —
/// a named std::mutex that feeds the runtime deadlock detector and gives
/// the lock-order graph its node identity. A raw std::mutex is invisible
/// to both, so it is banned everywhere except inside the wrapper itself.
void CheckRawMutex(const FileText& file, FileDiagnostics* diag) {
  if (file.rel_path == "src/util/mutex.h") return;
  const std::vector<std::string> needles = {
      std::string("std::") + "mutex",
      std::string("std::") + "shared_mutex",
      std::string("std::") + "recursive_mutex",
      std::string("std::") + "timed_mutex",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    for (const std::string& needle : needles) {
      if (FindToken(file.code[i], needle, 0) == std::string::npos) continue;
      diag->Emit(kRuleRawMutex, static_cast<int>(i) + 1,
                 needle +
                     " outside src/util/mutex.h; use landmark::Mutex so the "
                     "lock participates in the lock-order graph and the "
                     "LANDMARK_DEADLOCK_DEBUG runtime detector");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// header-guard + using-namespace (hygiene)

std::string ExpectedGuard(const std::string& rel_path) {
  std::string rel = rel_path;
  if (StartsWith(rel, "src/")) rel = rel.substr(4);
  std::string guard = "LANDMARK_";
  for (char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const FileText& file, FileDiagnostics* diag) {
  const std::string expected = ExpectedGuard(file.rel_path);
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string line = Trim(file.code[i]);
    if (line.empty()) continue;
    if (StartsWith(line, "#pragma") && line.find("once") != std::string::npos) {
      diag->Emit(kRuleHeaderGuard, static_cast<int>(i) + 1,
                 "#pragma once; use the include guard " + expected);
      return;
    }
    if (!StartsWith(line, "#ifndef")) continue;
    const std::string actual = Trim(line.substr(7));
    if (actual != expected) {
      diag->Emit(kRuleHeaderGuard, static_cast<int>(i) + 1,
                 "include guard '" + actual + "' should be '" + expected +
                     "'");
      return;
    }
    // The matching #define must follow on the next code line.
    for (size_t j = i + 1; j < file.code.size(); ++j) {
      const std::string next = Trim(file.code[j]);
      if (next.empty()) continue;
      if (next != "#define " + expected) {
        diag->Emit(kRuleHeaderGuard, static_cast<int>(j) + 1,
                   "#ifndef " + expected + " must be followed by #define " +
                       expected);
      }
      return;
    }
    return;
  }
  diag->Emit(kRuleHeaderGuard, 1, "missing include guard " + expected);
}

void CheckUsingNamespace(const FileText& file, FileDiagnostics* diag) {
  for (size_t i = 0; i < file.code.size(); ++i) {
    size_t pos = FindToken(file.code[i], "using", 0);
    if (pos == std::string::npos) continue;
    size_t next = SkipSpace(file.code[i], pos + 5);
    if (FindToken(file.code[i], "namespace", next) == next) {
      diag->Emit(kRuleUsingNamespace, static_cast<int>(i) + 1,
                 "'using namespace' in a header leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// metric-name (telemetry contract)

struct MetricUse {
  std::string file;
  int line = 0;
  std::string name;
  bool is_prefix = false;   // literal is a dynamic prefix ("pool/x/" + i)
  size_t sink_index = 0;    // the owning file's FileDiagnostics
};

/// Extracts string literals passed directly to the registry getters. Runs
/// on comment-stripped text (literals intact), joined back into one buffer
/// so a call whose literal sits on the following line still resolves.
/// Non-literal first arguments cannot be checked statically and are
/// ignored.
void CollectMetricUses(const FileText& file, std::vector<MetricUse>* out) {
  const std::vector<std::string> getters = {
      std::string("Get") + "Counter",
      std::string("Get") + "Gauge",
      std::string("Get") + "Histogram",
  };
  std::string buffer;
  for (const std::string& line : file.text) {
    buffer += line;
    buffer += '\n';
  }
  auto line_of = [&buffer](size_t pos) {
    return static_cast<int>(std::count(buffer.begin(), buffer.begin() + pos,
                                       '\n')) +
           1;
  };
  for (const std::string& getter : getters) {
    size_t pos = FindToken(buffer, getter, 0);
    while (pos != std::string::npos) {
      size_t open = SkipSpace(buffer, pos + getter.size());
      if (open < buffer.size() && buffer[open] == '(') {
        size_t quote = SkipSpace(buffer, open + 1);
        if (quote < buffer.size() && buffer[quote] == '"') {
          std::string name;
          size_t j = quote + 1;
          while (j < buffer.size() && buffer[j] != '"') {
            if (buffer[j] == '\\' && j + 1 < buffer.size()) ++j;
            name += buffer[j];
            ++j;
          }
          size_t after = SkipSpace(buffer, j + 1);
          const bool concatenated = after < buffer.size() &&
                                    buffer[after] == '+';
          if (!name.empty()) {
            out->push_back(MetricUse{file.rel_path, line_of(quote), name,
                                     concatenated || name.back() == '/'});
          }
        }
      }
      pos = FindToken(buffer, getter, pos + getter.size());
    }
  }
}

struct DocEntry {
  int line = 0;
  std::string name;        // exact documented name
  bool is_prefix = false;  // documented as NAME[/SUFFIX] or NAME/N
  bool used = false;
};

/// Parses the backticked names out of the first column of the "Metric name
/// contract" table. `model/queries[/NAME]` documents both the exact name
/// and the dynamic `model/queries/` prefix; `pool/worker_busy_seconds/N`
/// documents only the prefix.
std::vector<DocEntry> ParseMetricDocs(const std::vector<std::string>& lines,
                                      int* section_line) {
  std::vector<DocEntry> out;
  *section_line = 0;
  bool in_section = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "#")) {
      const bool is_contract =
          line.find("Metric name contract") != std::string::npos;
      if (is_contract) *section_line = static_cast<int>(i) + 1;
      in_section = is_contract;
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') continue;
    const size_t cell_end = line.find('|', 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(1, cell_end - 1);
    size_t tick = cell.find('`');
    while (tick != std::string::npos) {
      size_t close = cell.find('`', tick + 1);
      if (close == std::string::npos) break;
      std::string name = cell.substr(tick + 1, close - tick - 1);
      const int doc_line = static_cast<int>(i) + 1;
      const size_t bracket = name.find("[/");
      if (bracket != std::string::npos) {
        const std::string base = name.substr(0, bracket);
        out.push_back(DocEntry{doc_line, base, false});
        out.push_back(DocEntry{doc_line, base + "/", true});
      } else if (name.size() > 2 && name.compare(name.size() - 2, 2, "/N") ==
                                        0) {
        out.push_back(
            DocEntry{doc_line, name.substr(0, name.size() - 1), true});
      } else if (!name.empty()) {
        out.push_back(DocEntry{doc_line, name, false});
      }
      tick = cell.find('`', close + 1);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Driver

bool ReadFile(const fs::path& path, std::string* content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

std::string RelPath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  fs::path use = (ec || rel.empty() || *rel.begin() == "..") ? path : rel;
  return use.generic_string();
}

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::vector<fs::path> DefaultScan(const fs::path& root, std::string* error) {
  std::vector<fs::path> files;
  const fs::path fixtures = root / "tests" / "lint" / "fixtures";
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        *error = "cannot walk " + base.string() + ": " + ec.message();
        return {};
      }
      if (it->is_directory() && it->path() == fixtures) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && HasLintableExtension(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

const std::vector<std::string>& KnownRules() {
  static const std::vector<std::string>* rules = new std::vector<std::string>{
      kRuleBannedApi,  kRuleRawThread,      kRuleMutexGuard,
      kRuleMetricName, kRuleSleepPoll,      kRuleHeaderGuard,
      kRuleUsingNamespace, kRuleSuppression,
      kRuleRawMutex,   kRuleLockOrder,      kRuleLockBlocking,
      kRuleRawSimd};
  return *rules;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

bool RunLint(const LintConfig& config, std::vector<Diagnostic>* diagnostics,
             std::string* error) {
  diagnostics->clear();
  std::string walk_error;
  std::vector<fs::path> files = config.sources;
  if (files.empty()) {
    files = DefaultScan(config.root, &walk_error);
    if (!walk_error.empty()) {
      *error = walk_error;
      return false;
    }
  }

  std::vector<MetricUse> metric_uses;
  // Sinks stay alive until after the global metric-name and lock-graph
  // passes so their findings go through each file's suppression table too.
  std::vector<std::unique_ptr<FileDiagnostics>> sinks;
  std::map<std::string, size_t> sink_by_path;
  LockAnalyzer lock_analyzer;
  for (const fs::path& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) {
      *error = "cannot read " + path.string();
      return false;
    }
    const FileText file = SplitFile(RelPath(path, config.root), content);
    sinks.push_back(std::make_unique<FileDiagnostics>(
        file.rel_path, ParseSuppressions(file), diagnostics));
    sink_by_path[file.rel_path] = sinks.size() - 1;
    FileDiagnostics& diag = *sinks.back();
    const bool is_header = path.extension() == ".h";
    CheckBannedApi(file, &diag);
    CheckRawThread(file, &diag);
    CheckSleepPoll(file, &diag);
    CheckRawSimd(file, &diag);
    CheckMutexGuard(file, &diag);
    CheckRawMutex(file, &diag);
    if (is_header) {
      CheckHeaderGuard(file, &diag);
      CheckUsingNamespace(file, &diag);
    }
    // The lock-order graph covers src/ — tests may hold ad-hoc local locks
    // (and the fixture root maps its files under src/ deliberately).
    if (PathIsUnder(file.rel_path, "src/")) {
      lock_analyzer.AddFile(file);
    }
    // tests/ may use scratch metric names; the contract binds src, tools,
    // bench, and examples.
    if (!PathIsUnder(file.rel_path, "tests/")) {
      std::vector<MetricUse> uses;
      CollectMetricUses(file, &uses);
      for (MetricUse& use : uses) {
        use.sink_index = sinks.size() - 1;
        metric_uses.push_back(std::move(use));
      }
    }
  }

  std::vector<LockFinding> lock_findings;
  lock_analyzer.Finish(&lock_findings);
  for (LockFinding& finding : lock_findings) {
    auto it = sink_by_path.find(finding.file);
    if (it != sink_by_path.end()) {
      sinks[it->second]->Emit(finding.rule, finding.line,
                              std::move(finding.message));
    } else {
      diagnostics->push_back(Diagnostic{finding.file, finding.line,
                                        finding.rule,
                                        std::move(finding.message)});
    }
  }
  if (!config.lock_graph_out.empty()) {
    const fs::path dot_path = config.lock_graph_out.is_absolute()
                                  ? config.lock_graph_out
                                  : fs::current_path() / config.lock_graph_out;
    std::ofstream dot(dot_path, std::ios::binary);
    if (!dot) {
      *error = "cannot write lock graph to " + dot_path.string();
      return false;
    }
    dot << lock_analyzer.ToDot();
  }

  if (!config.doc_path.empty()) {
    const fs::path doc = config.doc_path.is_absolute()
                             ? config.doc_path
                             : config.root / config.doc_path;
    std::string content;
    if (!ReadFile(doc, &content)) {
      *error = "cannot read metric contract doc " + doc.string();
      return false;
    }
    std::vector<std::string> lines;
    std::istringstream stream(content);
    for (std::string line; std::getline(stream, line);) {
      lines.push_back(line);
    }
    int section_line = 0;
    std::vector<DocEntry> entries = ParseMetricDocs(lines, &section_line);
    const std::string doc_rel = RelPath(doc, config.root);
    if (section_line == 0) {
      diagnostics->push_back(
          Diagnostic{doc_rel, 1, kRuleMetricName,
                     "no 'Metric name contract' section found"});
    }
    for (const MetricUse& use : metric_uses) {
      bool documented = false;
      for (DocEntry& entry : entries) {
        const bool match =
            use.is_prefix
                ? (entry.is_prefix && entry.name == use.name)
                : (entry.is_prefix ? StartsWith(use.name, entry.name)
                                   : entry.name == use.name);
        if (match) {
          entry.used = true;
          documented = true;
        }
      }
      if (!documented) {
        sinks[use.sink_index]->Emit(
            kRuleMetricName, use.line,
            "metric name \"" + use.name + "\" is not documented in " +
                doc_rel + " (\"Metric name contract\")");
      }
    }
    for (const DocEntry& entry : entries) {
      if (!entry.used) {
        diagnostics->push_back(Diagnostic{
            doc_rel, entry.line, kRuleMetricName,
            "documented metric \"" + entry.name +
                "\" is no longer referenced by any registry call; update "
                "the contract table"});
      }
    }
  }

  for (const std::unique_ptr<FileDiagnostics>& sink : sinks) {
    sink->FinishSuppressions();
  }

  std::sort(diagnostics->begin(), diagnostics->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return true;
}

}  // namespace landmark_lint
