// http_probe — raw-socket HTTP GET against a loopback port, for the
// scripts/check.sh exporter smoke stage (the CI image carries no curl).
//
//   http_probe PORT PATH [--expect-status N] [--expect-substring S]
//                        [--accept TYPE]
//
// Prints the response body to stdout. Exits non-zero when the connection
// fails, the status differs from --expect-status (default 200), or the
// body misses --expect-substring / is empty. --accept sends an Accept
// request header, e.g. `--accept application/openmetrics-text` to ask
// /metrics for the OpenMetrics exposition with exemplars.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/telemetry/http_exporter.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: http_probe PORT PATH [--expect-status N] "
                 "[--expect-substring S] [--accept TYPE]\n");
    return 2;
  }
  const int port = std::atoi(argv[1]);
  const std::string path = argv[2];
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "http_probe: bad port '%s'\n", argv[1]);
    return 2;
  }
  auto flags = landmark::Flags::Parse(argc - 2, argv + 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "http_probe: %s\n",
                 flags.status().ToString().c_str());
    return 2;
  }
  const int expect_status =
      static_cast<int>(flags->GetInt("expect-status", 200));
  const std::string expect_substring =
      flags->GetString("expect-substring", "");
  const std::string accept = flags->GetString("accept", "");

  std::vector<std::string> headers;
  if (!accept.empty()) headers.push_back("Accept: " + accept);
  int status_code = 0;
  landmark::Result<std::string> body = landmark::HttpGetLoopback(
      static_cast<uint16_t>(port), path, headers, &status_code);
  if (!body.ok()) {
    std::fprintf(stderr, "http_probe: %s\n",
                 body.status().ToString().c_str());
    return 1;
  }
  std::fputs(body->c_str(), stdout);
  if (status_code != expect_status) {
    std::fprintf(stderr, "http_probe: expected status %d, got %d\n",
                 expect_status, status_code);
    return 1;
  }
  if (body->empty()) {
    std::fprintf(stderr, "http_probe: empty response body\n");
    return 1;
  }
  if (!expect_substring.empty() &&
      body->find(expect_substring) == std::string::npos) {
    std::fprintf(stderr, "http_probe: body misses expected substring '%s'\n",
                 expect_substring.c_str());
    return 1;
  }
  return 0;
}
